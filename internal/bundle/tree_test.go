package bundle

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

func TestVerifyModeParseString(t *testing.T) {
	for _, m := range []VerifyMode{VerifyCollect, VerifyTree, VerifyAuto} {
		got, err := ParseVerifyMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v err %v", m, got, err)
		}
	}
	if m, err := ParseVerifyMode(""); err != nil || m != VerifyCollect {
		t.Fatalf("empty string: %v %v", m, err)
	}
	if _, err := ParseVerifyMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
}

// TestVerifyModeParityMatchStream is the tentpole correctness gate: for
// every verify mode × kernel × pool size, the ordered match stream must
// be byte-identical to the collect-mode sequential reference. Work
// counters legitimately differ across modes (that is the point), so only
// streams are compared across modes; stats equality within a mode is
// covered by TestTreeStatsParitySerialParallel.
func TestVerifyModeParityMatchStream(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	stream := duplicateHeavyStream(rng, 500, 40)
	kernels := []similarity.Kernel{
		similarity.KernelAuto, similarity.KernelLinear,
		similarity.KernelGallop, similarity.KernelBitset,
	}
	for _, tau := range []float64{0.5, 0.8} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 60}} {
			want, _ := runSequential(stream, tau, win, Config{})
			if tau == 0.5 && len(want) == 0 {
				t.Fatal("degenerate workload: collect run found no matches")
			}
			for _, mode := range []VerifyMode{VerifyTree, VerifyAuto} {
				for _, kern := range kernels {
					cfg := Config{
						VerifyMode: mode,
						Kernel:     similarity.KernelConfig{Mode: kern},
					}
					for _, p := range []int{1, 2, 4, 8} {
						got, _ := runParallel(stream, tau, win, cfg, p)
						label := fmt.Sprintf("τ=%v win=%v mode=%v kern=%v P=%d", tau, win, mode, kern, p)
						requireStreams(t, label, got, want, Stats{}, Stats{})
					}
				}
			}
		}
	}
}

// TestTreeStatsParitySerialParallel pins that a pooled tree probe does
// exactly the work of the serial tree probe: identical streams AND
// identical counter totals for any pool size, mirroring the collect-mode
// guarantee of TestParallelParityMatchStream.
func TestTreeStatsParitySerialParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	stream := duplicateHeavyStream(rng, 500, 40)
	for _, tau := range []float64{0.5, 0.8} {
		cfg := Config{VerifyMode: VerifyTree}
		want, wantStats := runSequential(stream, tau, window.Count{N: 80}, cfg)
		for _, p := range []int{2, 4, 8} {
			got, gotStats := runParallel(stream, tau, window.Count{N: 80}, cfg, p)
			requireStreams(t, fmt.Sprintf("tree τ=%v P=%d", tau, p), got, want, gotStats, wantStats)
		}
	}
}

// TestTreeJoinMatchesBruteForce grounds tree mode directly against the
// quadratic scan, independent of collect-mode parity.
func TestTreeJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, tau := range []float64{0.5, 0.7, 0.85} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 25}} {
			bx := New(params(tau), win, Config{VerifyMode: VerifyTree})
			stream := duplicateHeavyStream(rng, 220, 50)
			got := make(map[record.Pair]bool)
			for _, r := range stream {
				bx.Process(r, func(m Match) {
					got[record.NewPair(r.ID, m.Rec.ID, 0)] = true
					if truth := similarity.IntersectSize(r.Tokens, m.Rec.Tokens); truth != m.Overlap {
						t.Fatalf("overlap wrong: got %d want %d", m.Overlap, truth)
					}
				})
			}
			want := bruteForce(stream, tau, win)
			if len(got) != len(want) {
				t.Fatalf("τ=%v win=%v: got %d pairs want %d", tau, win, len(got), len(want))
			}
			for pr := range want {
				if !got[pr] {
					t.Fatalf("τ=%v win=%v: missing %v", tau, win, pr)
				}
			}
		}
	}
}

// checkTree walks the whole tree asserting structural invariants: exact
// live counts, members anchored under exactly their probing prefix,
// conservative aggregates, sorted distinct children, and no dead or
// duplicated members.
func checkTree(t *testing.T, bx *Index) {
	t.Helper()
	if bx.root == nil {
		t.Fatal("index maintains no tree")
	}
	live := make(map[*Member]bool)
	for i := bx.head; i < len(bx.fifo); i++ {
		fe := bx.fifo[i]
		if fe.m != nil && !fe.m.dead {
			live[fe.m] = true
		}
	}
	seen := make(map[*Member]bool)
	var nodes uint64
	var walk func(n *treeNode, path []tokens.Rank) int
	walk = func(n *treeNode, path []tokens.Rank) int {
		path = append(path, n.seg...)
		cnt := 0
		for _, le := range n.leaf {
			cnt++
			if !live[le.m] {
				t.Fatalf("dead or unknown member %d in tree", le.m.Rec.ID)
			}
			if seen[le.m] {
				t.Fatalf("member %d anchored twice", le.m.Rec.ID)
			}
			seen[le.m] = true
			l := le.m.Rec.Len()
			if l < n.minLen || l > n.maxLen {
				t.Fatalf("member %d len %d outside node range [%d,%d]", le.m.Rec.ID, l, n.minLen, n.maxLen)
			}
			p := bx.params.PrefixLen(l)
			if p > l {
				p = l
			}
			want := le.m.Rec.Tokens[:p]
			if len(want) != len(path) {
				t.Fatalf("member %d: path len %d, prefix len %d", le.m.Rec.ID, len(path), len(want))
			}
			for i := range want {
				if want[i] != path[i] {
					t.Fatalf("member %d: path %v != prefix %v", le.m.Rec.ID, path, want)
				}
			}
		}
		var prev tokens.Rank
		for i, c := range n.children {
			nodes++
			if len(c.seg) == 0 {
				t.Fatal("empty child segment")
			}
			if i > 0 && c.seg[0] <= prev {
				t.Fatalf("children unsorted: %d after %d", c.seg[0], prev)
			}
			prev = c.seg[0]
			if c.count == 0 {
				t.Fatal("empty subtree not detached")
			}
			if len(path) > 0 && c.seg[0] <= path[len(path)-1] {
				t.Fatalf("path tokens not ascending: %d under %v", c.seg[0], path)
			}
			if c.maxTok > n.maxTok {
				t.Fatalf("child maxTok %d above parent %d", c.maxTok, n.maxTok)
			}
			cnt += walk(c, path)
		}
		if n.count != cnt {
			t.Fatalf("node count %d, walked %d", n.count, cnt)
		}
		return cnt
	}
	total := walk(bx.root, nil)
	if total != len(live) {
		t.Fatalf("tree holds %d members, window holds %d", total, len(live))
	}
	if nodes != bx.stats.TreeNodes {
		t.Fatalf("TreeNodes gauge %d, walked %d", bx.stats.TreeNodes, nodes)
	}
}

// TestTreeMaintenanceEvictionHeavy churns the tree with a tiny sliding
// window — every record inserts one path and evicts roughly one member —
// while probing continuously, then checks full structural invariants at
// several points. Run under -race in CI, it also exercises the
// fanned-descent happens-before edges.
func TestTreeMaintenanceEvictionHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	stream := duplicateHeavyStream(rng, 1200, 35)
	for _, p := range []int{1, 3} {
		bxTree := New(params(0.6), window.Count{N: 40}, Config{VerifyMode: VerifyTree})
		bxColl := New(params(0.6), window.Count{N: 40}, Config{})
		pool := NewPool(p)
		var treeOut, collOut []emitted
		for i, r := range stream {
			processPar(bxTree, pool, r, func(m Match) {
				treeOut = append(treeOut, emitted{r.ID, m.Rec.ID, m.Overlap, m.Sim})
			})
			bxColl.Process(r, func(m Match) {
				collOut = append(collOut, emitted{r.ID, m.Rec.ID, m.Overlap, m.Sim})
			})
			if i%250 == 0 || i == len(stream)-1 {
				checkTree(t, bxTree)
			}
		}
		pool.Close()
		requireStreams(t, fmt.Sprintf("eviction-heavy P=%d", p), treeOut, collOut, Stats{}, Stats{})
		if bxTree.stats.Evicted == 0 {
			t.Fatal("window never evicted")
		}
		if bxTree.stats.TreeSubtreesPruned == 0 {
			t.Fatal("tree never pruned a subtree")
		}
	}
}

// TestTreeAvoidsCandidates pins the headline perf claim at the unit
// level: on a bundle-heavy stream, tree mode verifies measurably fewer
// members than collect mode (identical matches), and reports the
// avoidance in its counters.
func TestTreeAvoidsCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	stream := duplicateHeavyStream(rng, 800, 40)
	_, coll := runSequential(stream, 0.6, window.Unbounded{}, Config{})
	_, tree := runSequential(stream, 0.6, window.Unbounded{}, Config{VerifyMode: VerifyTree})
	if tree.Results != coll.Results {
		t.Fatalf("result mismatch: tree=%d collect=%d", tree.Results, coll.Results)
	}
	if tree.Verified >= coll.Verified {
		t.Fatalf("tree did not reduce verifications: tree=%d collect=%d", tree.Verified, coll.Verified)
	}
	if tree.TreeCandsAvoided == 0 || tree.TreeSubtreesPruned == 0 {
		t.Fatalf("avoidance not counted: %+v", tree)
	}
	if tree.TreeProbes != coll.Records {
		t.Fatalf("TreeProbes=%d, want one per record %d", tree.TreeProbes, coll.Records)
	}
}

// TestAutoModeSwitches drives enough records past autoTreeMinLive that
// auto mode must start answering probes from the tree, while staying
// byte-identical to collect.
func TestAutoModeSwitches(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	stream := duplicateHeavyStream(rng, 2*autoTreeMinLive, 60)
	want, _ := runSequential(stream, 0.6, window.Unbounded{}, Config{})
	got, st := runSequential(stream, 0.6, window.Unbounded{}, Config{VerifyMode: VerifyAuto})
	requireStreams(t, "auto", got, want, Stats{}, Stats{})
	if st.TreeProbes == 0 {
		t.Fatal("auto mode never took the tree path")
	}
	if st.TreeProbes >= st.Records {
		t.Fatal("auto mode never took the collect path")
	}
}

// FuzzTreeVsCollect is the differential fuzz gate: random windows,
// thresholds and token streams; tree mode (serial and pooled) must emit
// the byte-identical ordered match stream as collect mode.
func FuzzTreeVsCollect(f *testing.F) {
	f.Add([]byte{8, 3, 1, 2, 3, 4, 0, 3, 1, 2, 5, 0, 3, 2, 3, 4})
	f.Add([]byte{40, 5, 9, 9, 9, 9, 9, 0})
	f.Add([]byte{0, 4, 7, 1, 7, 3, 0, 4, 1, 3, 7, 9, 0, 2, 7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 512 {
			t.Skip()
		}
		// Byte 0 picks the window (0 = unbounded), byte 1 the threshold;
		// the rest is a stream of length-prefixed token lists.
		var win window.Policy = window.Unbounded{}
		if n := int64(data[0]); n > 0 {
			win = window.Count{N: n}
		}
		tau := 0.5 + float64(data[1]%5)*0.1
		var stream []*record.Record
		i := 2
		for id := 0; i < len(data) && id < 64; id++ {
			n := int(data[i]%12) + 1
			i++
			var ranks []tokens.Rank
			for k := 0; k < n && i < len(data); k++ {
				ranks = append(ranks, tokens.Rank(data[i]%48))
				i++
			}
			if len(ranks) == 0 {
				break
			}
			stream = append(stream, rec(record.ID(id), ranks...))
		}
		if len(stream) == 0 {
			t.Skip()
		}
		want, _ := runSequential(stream, tau, win, Config{})
		for _, p := range []int{1, 3} {
			got, _ := runParallel(stream, tau, win, Config{VerifyMode: VerifyTree}, p)
			requireStreams(t, fmt.Sprintf("fuzz tree P=%d", p), got, want, Stats{}, Stats{})
		}
		gotAuto, _ := runSequential(stream, tau, win, Config{VerifyMode: VerifyAuto})
		requireStreams(t, "fuzz auto", gotAuto, want, Stats{}, Stats{})
	})
}

// TestAdaptiveMinLenNeverChangesResults pins satellite guarantee: kernel
// adaptation moves BitsetMinLen (within its clamps) but can never change
// the match stream. The dense small-universe stream packs heavily, so
// the bitset share is high and the cutoff is driven downward.
func TestAdaptiveMinLenNeverChangesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	// Long dense records over a narrow universe: packed forms everywhere.
	var stream []*record.Record
	for i := 0; i < 2*adaptInterval+50; i++ {
		var set []tokens.Rank
		for len(set) < 70 {
			set = append(set, tokens.Rank(rng.Intn(160)))
		}
		stream = append(stream, rec(record.ID(i), set...))
	}
	want, _ := runSequential(stream, 0.5, window.Count{N: 200}, Config{})
	cfgA := Config{Kernel: similarity.KernelConfig{AdaptiveMinLen: true}}
	bx := New(params(0.5), window.Count{N: 200}, cfgA)
	var got []emitted
	for _, r := range stream {
		bx.Process(r, func(m Match) {
			got = append(got, emitted{r.ID, m.Rec.ID, m.Overlap, m.Sim})
		})
	}
	requireStreams(t, "adaptive", got, want, Stats{}, Stats{})
	cut := bx.Config().Kernel.BitsetMinLen
	if cut < adaptMinLen || cut > adaptMaxLen {
		t.Fatalf("adapted cutoff %d outside clamps", cut)
	}
	if cut == 64 {
		t.Fatalf("cutoff never adapted on a bitset-heavy stream: %d", cut)
	}
}
