// Package bundle implements the bundle-based streaming join: the join
// results of each incoming record guide index construction by grouping
// similar records into bundles on the fly. A bundle factors its members
// into a shared core (tokens common to all members) and small per-member
// deltas, so that
//
//   - filtering cost is shared: one posting per (bundle, token) instead of
//     one per (record, token), one union-overlap upper bound prunes all
//     members at once, and
//   - verification cost is shared: overlap(probe, member) =
//     overlap(probe, core) + overlap(probe, delta), so the core term is
//     computed once per bundle and each member costs only its token
//     difference.
//
// Both identities are exact because core and delta are disjoint and their
// union is the member's token set.
package bundle

import (
	"repro/internal/tokens"

	"repro/internal/record"
	"repro/internal/similarity"
)

// Member is one record inside a bundle together with its token difference
// from the bundle core.
type Member struct {
	Rec   *record.Record
	Delta []tokens.Rank // Rec.Tokens \ Core, ascending
	dead  bool

	// Cached bitset forms for the kernelized verify path (see kernels.go).
	// full packs Rec.Tokens, delta packs Delta; the OK flags distinguish
	// "not packed under this kernel config" from "packed and current".
	// Maintained only by the single-writer insert/evict phases.
	full    similarity.Packed
	fullOK  bool
	deltaP  similarity.Packed
	deltaOK bool
}

// Bundle groups records that joined with one another. Invariants:
// Core ⊆ member.Rec.Tokens for every member; member.Delta = member tokens
// minus Core; Union ⊇ member tokens for every member (Union may be a strict
// superset after evictions, which is safe because it is only used as an
// upper bound).
type Bundle struct {
	ID      uint64
	Core    []tokens.Rank
	Union   []tokens.Rank
	Members []*Member

	// posted tracks the tokens this bundle already has postings under so
	// member additions do not duplicate postings. Prefixes are short, so a
	// small slice with linear dedup beats a map (profiled: the map was the
	// top allocation site).
	posted []tokens.Rank
	// peak tracks the max member count since the last shrink rebuild.
	peak int
	live int

	// lastSeen is the probe sequence number of the last collectCandidates
	// call that visited this bundle — the per-probe dedup stamp that
	// replaced the old seen map (an epoch check beats a map insert per
	// candidate posting).
	lastSeen uint64

	// Cached bitset forms of Core and Union plus their validity flags,
	// rebuilt by the single-writer insert/evict phases whenever the
	// underlying slice changes (see kernels.go).
	coreP   similarity.Packed
	coreOK  bool
	unionP  similarity.Packed
	unionOK bool
	// unionOwned reports whether Union's backing array belongs to this
	// bundle. A singleton aliases its record's immutable token slice, so
	// in-place union growth must first copy into owned storage.
	unionOwned bool
}

func (b *Bundle) hasPosted(tok tokens.Rank) bool {
	for _, p := range b.posted {
		if p == tok {
			return true
		}
	}
	return false
}

// Live reports the number of unevicted members.
func (b *Bundle) Live() int { return b.live }

// MinLen and MaxLen return the live member length extremes; both return 0
// when the bundle is empty.
func (b *Bundle) MinLen() int {
	min := 0
	for _, m := range b.Members {
		if m.dead {
			continue
		}
		if min == 0 || m.Rec.Len() < min {
			min = m.Rec.Len()
		}
	}
	return min
}

// MaxLen returns the largest live member length.
func (b *Bundle) MaxLen() int {
	max := 0
	for _, m := range b.Members {
		if !m.dead && m.Rec.Len() > max {
			max = m.Rec.Len()
		}
	}
	return max
}

// intersect returns a ∩ b (both ascending).
func intersect(a, b []tokens.Rank) []tokens.Rank {
	out := make([]tokens.Rank, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// subtract returns a \ b (both ascending).
func subtract(a, b []tokens.Rank) []tokens.Rank {
	out := make([]tokens.Rank, 0, len(a))
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			j++
			continue
		}
		out = append(out, a[i])
		i++
	}
	return out
}

// union returns a ∪ b (both ascending).
func union(a, b []tokens.Rank) []tokens.Rank {
	out := make([]tokens.Rank, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// merge returns a ∪ b assuming a ∩ b = ∅ (used to reconstitute member
// token sets from core+delta in tests).
func merge(a, b []tokens.Rank) []tokens.Rank { return union(a, b) }

// overlapSteps computes |a∩b| and the number of merge iterations spent, the
// unit the experiment harness uses to compare batch and one-by-one
// verification cost.
func overlapSteps(a, b []tokens.Rank) (o, steps int) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		steps++
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, steps
}

// overlapStepsBounded behaves like overlapSteps but aborts once required
// becomes unreachable. ok=false means the requirement failed and o is a
// lower bound; ok=true means o is the exact intersection size.
func overlapStepsBounded(a, b []tokens.Rank, required int) (o, steps int, ok bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		rest := len(a) - i
		if lb := len(b) - j; lb < rest {
			rest = lb
		}
		if o+rest < required {
			return o, steps, false
		}
		steps++
		switch {
		case a[i] == b[j]:
			o++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return o, steps, o >= required
}

// unionInto merges a ∪ b (both ascending) onto dst, appending after dst's
// existing elements, and returns the extended slice. When dst has spare
// capacity the merge is allocation-free; dst may share its backing array
// with a as long as a sits at or beyond the write region (the in-place
// idiom unionAdd uses), because every element of a is read in the same
// iteration that can first overwrite it.
func unionInto(dst, a, b []tokens.Rank) []tokens.Rank {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// unionAdd grows Union by t's tokens in place when the bundle owns the
// backing array and it has room; otherwise it reallocates with headroom
// (so per-insert union growth is amortized allocation-free). The in-place
// path shifts the old union to the tail of the buffer and forward-merges
// into the front: the write cursor can never pass the shifted read cursor
// because the merge emits at most one element per element consumed.
func (b *Bundle) unionAdd(t []tokens.Rank) {
	need := len(b.Union) + len(t)
	if !b.unionOwned || cap(b.Union) < need {
		buf := make([]tokens.Rank, 0, need*2)
		b.Union = unionInto(buf, b.Union, t)
		b.unionOwned = true
		return
	}
	u := b.Union
	buf := u[:need]
	shifted := buf[need-len(u):]
	copy(shifted, u)
	b.Union = unionInto(buf[:0], shifted, t)
}

// add appends r as a member: the core shrinks to core ∩ r, existing deltas
// absorb the evicted core tokens, and the union grows by r's tokens.
// newCore must equal core ∩ r.Tokens when the bundle is non-empty — the
// caller already computed it for the grouping check, so add reuses it
// instead of re-merging; it may alias caller scratch (add copies before
// keeping it) and is ignored for the first member. Members and deltas come
// out of al's slabs, and every token set whose slice changed gets its
// cached bitset form rebuilt under kern. add returns the tokens of r's
// prefix that were not yet posted for this bundle so the caller can extend
// the posting lists.
func (b *Bundle) add(al *alloc, kern similarity.KernelConfig, r *record.Record, prefixLen int, newCore []tokens.Rank) (newPostings []tokens.Rank) {
	if b.live == 0 {
		// Records are immutable, so a singleton bundle can alias the
		// record's token slice; every later mutation path copies before
		// writing (unionAdd checks unionOwned, core shrink reallocates).
		b.Core = r.Tokens
		b.Union = r.Tokens
		b.unionOwned = false
		m := al.member()
		m.Rec = r
		b.Members = append(b.Members, m)
		packIf(kern, &m.full, &m.fullOK, r.Tokens)
	} else {
		if len(newCore) != len(b.Core) {
			released := similarity.GetRanks()
			*released = similarity.SubtractInto(*released, b.Core, newCore)
			for _, m := range b.Members {
				if m.dead {
					continue
				}
				buf := al.grab(len(m.Delta) + len(*released))
				m.Delta = unionInto(buf, m.Delta, *released)
				al.commit(len(m.Delta))
				packIf(kern, &m.deltaP, &m.deltaOK, m.Delta)
			}
			b.Core = append(make([]tokens.Rank, 0, len(newCore)), newCore...)
			similarity.PutRanks(released)
		}
		b.unionAdd(r.Tokens)
		m := al.member()
		m.Rec = r
		buf := al.grab(r.Len())
		m.Delta = similarity.SubtractInto(buf, r.Tokens, b.Core)
		al.commit(len(m.Delta))
		b.Members = append(b.Members, m)
		packIf(kern, &m.full, &m.fullOK, r.Tokens)
		packIf(kern, &m.deltaP, &m.deltaOK, m.Delta)
		// Core and Union now serve the shared-verification identity (the
		// singleton fast path never consults them), so (re)pack both: the
		// union always grew, and the core cache may predate this member or
		// the shrink above.
		packIf(kern, &b.coreP, &b.coreOK, b.Core)
		packIf(kern, &b.unionP, &b.unionOK, b.Union)
	}
	b.live++
	if b.live > b.peak {
		b.peak = b.live
	}
	for i := 0; i < prefixLen && i < r.Len(); i++ {
		tok := r.Tokens[i]
		if !b.hasPosted(tok) {
			b.posted = append(b.posted, tok)
			newPostings = append(newPostings, tok)
		}
	}
	return newPostings
}

// removeDead drops dead members and, when the bundle has shrunk to half its
// peak, rebuilds Union from the survivors (refreshing its cached bitset
// form under kern).
func (b *Bundle) removeDead(kern similarity.KernelConfig) {
	w := 0
	for _, m := range b.Members {
		if !m.dead {
			b.Members[w] = m
			w++
		}
	}
	b.Members = b.Members[:w]
	if b.live == 0 || w == 0 {
		return
	}
	if w*2 <= b.peak {
		u := append([]tokens.Rank(nil), b.Members[0].Rec.Tokens...)
		for _, m := range b.Members[1:] {
			u = union(u, m.Rec.Tokens)
		}
		b.Union = u
		b.unionOwned = true
		b.peak = w
		packIf(kern, &b.unionP, &b.unionOK, b.Union)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
