package bundle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/similarity"
	"repro/internal/window"
)

// kernelMatrix is every forced kernel plus auto at cutoffs that exercise
// all three paths on the test streams (tiny BitsetMinLen and GallopRatio
// so short synthetic records still hit the bitset and gallop branches).
var kernelMatrix = []similarity.KernelConfig{
	{Mode: similarity.KernelLinear},
	{Mode: similarity.KernelGallop},
	{Mode: similarity.KernelBitset},
	{Mode: similarity.KernelAuto},
	{Mode: similarity.KernelAuto, GallopRatio: 2, BitsetMinLen: 4},
}

// TestKernelParityMatchStream is the kernel-choice analogue of the pool
// parity gate: every kernel config must emit the byte-identical ordered
// match stream of the linear reference, at every pool size. Work counters
// are NOT compared across kernels (the kernel mix differs by design);
// within one kernel config, serial-vs-parallel counter parity is covered
// by requireStreams below.
func TestKernelParityMatchStream(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	stream := duplicateHeavyStream(rng, 500, 40)
	for _, tau := range []float64{0.5, 0.8} {
		want, _ := runSequential(stream, tau, window.Count{N: 80}, Config{Kernel: similarity.KernelConfig{Mode: similarity.KernelLinear}})
		if tau == 0.5 && len(want) == 0 {
			t.Fatal("degenerate workload: linear reference found no matches")
		}
		for ki, kern := range kernelMatrix {
			cfg := Config{Kernel: kern}
			got, gotStats := runSequential(stream, tau, window.Count{N: 80}, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("τ=%v kernel#%d (%v): sequential stream diverges from linear (lengths %d vs %d)",
					tau, ki, kern.Mode, len(got), len(want))
			}
			for _, p := range []int{2, 8} {
				gotP, statsP := runParallel(stream, tau, window.Count{N: 80}, cfg, p)
				requireStreams(t, fmt.Sprintf("τ=%v kernel#%d P=%d", tau, ki, p),
					gotP, want, statsP, gotStats)
			}
		}
	}
}

// TestKernelParityOneByOne re-checks kernel parity under the E8 ablation
// config, whose verify path (full member merges) dispatches on the
// members' full packed forms.
func TestKernelParityOneByOne(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	stream := duplicateHeavyStream(rng, 300, 30)
	want, _ := runSequential(stream, 0.6, window.Count{N: 100}, Config{OneByOneVerify: true})
	for ki, kern := range kernelMatrix {
		got, _ := runSequential(stream, 0.6, window.Count{N: 100}, Config{OneByOneVerify: true, Kernel: kern})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kernel#%d (%v): one-by-one stream diverges (lengths %d vs %d)",
				ki, kern.Mode, len(got), len(want))
		}
	}
}

// TestKernelCountersFire checks that the forced and low-cutoff-auto
// configs actually exercise their kernels (otherwise the parity matrix
// would vacuously pass on the linear path) and that the new prune
// counters move on a grouping-heavy stream.
func TestKernelCountersFire(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	stream := duplicateHeavyStream(rng, 400, 30)
	run := func(cfg Config) Stats {
		_, st := runSequential(stream, 0.6, window.Count{N: 100}, cfg)
		return st
	}
	if st := run(Config{Kernel: similarity.KernelConfig{Mode: similarity.KernelGallop}}); st.KernelGallop == 0 || st.KernelBitset != 0 {
		t.Fatalf("forced gallop counters: %+v", st)
	}
	if st := run(Config{Kernel: similarity.KernelConfig{Mode: similarity.KernelBitset}}); st.KernelBitset == 0 {
		t.Fatalf("forced bitset never ran the bitset kernel")
	}
	if st := run(Config{Kernel: similarity.KernelConfig{Mode: similarity.KernelLinear}}); st.KernelGallop != 0 || st.KernelBitset != 0 {
		t.Fatalf("forced linear ran a non-linear kernel: %+v", st)
	}
	st := run(Config{Kernel: similarity.KernelConfig{Mode: similarity.KernelAuto, GallopRatio: 2, BitsetMinLen: 4}})
	if st.KernelGallop == 0 || st.KernelBitset == 0 || st.KernelLinear == 0 {
		t.Fatalf("low-cutoff auto should mix all kernels: %+v", st)
	}
	if st.Pruned() == 0 {
		t.Fatalf("no candidate was ever pruned pre-verify: %+v", st)
	}
}
