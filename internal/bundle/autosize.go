// Verifier-pool auto-sizing: turn "-parallel=0" into a concrete pool
// size. GOMAXPROCS alone over-provisions on throttled hosts (cgroup CPU
// limits, busy CI runners, SMT siblings counted as cores), so the
// candidate size is clamped by a short measured-scaling probe over a
// verification-shaped workload before any goroutines are committed to
// the pool. The chosen size never affects results — ProbePar merges in
// deterministic order at any P.
package bundle

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/similarity"
	"repro/internal/tokens"
)

const (
	// autoPoolCap bounds the auto-sized pool: beyond ~8 helpers the
	// single-writer collect/merge phases dominate and extra stints only
	// add wake/claim overhead (see DESIGN.md, verifier pool scaling).
	autoPoolCap = 8
	// autoProbeMerges is the fixed packed-merge count the scaling probe
	// splits across goroutines — ~1ms serial on current hardware, cheap
	// enough to pay once at startup.
	autoProbeMerges = 1 << 13
	// autoProbeSetLen sizes the probe's synthetic sets.
	autoProbeSetLen = 512
	// autoMinSpeedup is the parallel-over-serial probe speedup below
	// which auto-sizing falls back to a single-threaded joiner.
	autoMinSpeedup = 1.2
)

// AutoPoolSize picks a verifier pool size for callers that request
// automatic parallelism (the CLIs' -parallel=0): runtime.GOMAXPROCS
// capped at autoPoolCap, then clamped to the speedup a measured scaling
// probe actually achieves on this host. Degenerate scaling (under
// autoMinSpeedup) returns 1, keeping the joiner strictly serial rather
// than paying pool overhead the hardware cannot repay.
func AutoPoolSize() int {
	p := runtime.GOMAXPROCS(0)
	if p > autoPoolCap {
		p = autoPoolCap
	}
	if p <= 1 {
		return 1
	}
	serial := probeScaling(1)
	par := probeScaling(p)
	if serial <= 0 || par <= 0 {
		return p // timer too coarse to judge; trust GOMAXPROCS
	}
	speedup := float64(serial) / float64(par)
	if speedup < autoMinSpeedup {
		return 1
	}
	if s := int(speedup + 0.5); s < p {
		p = s
	}
	if p < 1 {
		p = 1
	}
	return p
}

// probeScaling times autoProbeMerges packed intersections split across g
// goroutines — the same kernel shape the verifier pool runs — and
// returns the wall clock consumed. Each goroutine folds into its own
// slot, so the probe is race-free under -race test runs.
func probeScaling(g int) time.Duration {
	ranks := make([]tokens.Rank, autoProbeSetLen)
	for i := range ranks {
		ranks[i] = tokens.Rank(3 * i)
	}
	var pa, pb similarity.Packed
	similarity.PackInto(&pa, ranks)
	for i := range ranks {
		ranks[i] = tokens.Rank(3*i + 2)
	}
	similarity.PackInto(&pb, ranks)

	acc := make([]int, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			sum := 0
			for i := 0; i < autoProbeMerges/g; i++ {
				n, _ := similarity.IntersectSizePacked(&pa, &pb)
				sum += n
			}
			acc[slot] = sum
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if acc[0] < 0 { // defeat dead-code elimination of the probe loop
		panic("unreachable")
	}
	return elapsed
}
