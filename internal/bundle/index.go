package bundle

import (
	"sync/atomic"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

// Config tunes bundle construction and verification.
type Config struct {
	// GroupThreshold λ is the minimum similarity between an incoming record
	// and its best join partner for the record to join that partner's
	// bundle; below it the record starts a singleton bundle. λ >= the join
	// threshold τ; λ == τ (the default when zero) groups most aggressively.
	GroupThreshold float64
	// MaxMembers caps bundle size so core maintenance stays cheap.
	// Default 64.
	MaxMembers int
	// MinCoreFrac rejects a membership that would shrink the core below
	// this fraction of the incoming record's length, protecting the
	// shared-verification benefit. Default 0.5.
	MinCoreFrac float64
	// OneByOneVerify disables batch verification: each surviving member is
	// verified by a full merge of the probe against the member's complete
	// token set. Used by the E8 ablation.
	OneByOneVerify bool
	// Kernel selects the verification intersection kernel and its cutoffs
	// (see similarity.KernelConfig). Every kernel computes exact overlaps,
	// so this setting never changes the emitted matches — it is therefore
	// worker-local and deliberately kept off the wire protocol.
	Kernel similarity.KernelConfig
	// VerifyMode selects collect (posting-list candidates, then verify),
	// tree (candidate-free filter-and-verification tree), or auto (per
	// probe). Every mode emits the byte-identical match stream, so like
	// Kernel it is worker-local and kept off the wire protocol.
	VerifyMode VerifyMode
}

func (c Config) withDefaults(tau float64) Config {
	if c.GroupThreshold == 0 {
		c.GroupThreshold = tau
	}
	if c.MaxMembers == 0 {
		c.MaxMembers = 64
	}
	if c.MinCoreFrac == 0 {
		c.MinCoreFrac = 0.5
	}
	c.Kernel = c.Kernel.WithDefaults()
	return c
}

// Match is a verified join result.
type Match struct {
	Rec     *record.Record
	Overlap int
	Sim     float64
}

// Stats counts the work the bundle index performed.
type Stats struct {
	Records        uint64 // records processed
	Bundles        uint64 // bundles created
	Appends        uint64 // records appended to an existing bundle
	Postings       uint64 // live posting entries
	Scanned        uint64 // bundle postings visited
	BundleCands    uint64 // distinct candidate bundles per probe, summed
	BundleLenSkip  uint64 // bundles skipped entirely by the length range
	BundleUBSkip   uint64 // bundles skipped entirely by the union bound
	MemberChecks   uint64 // member upper-bound evaluations
	MemberUBSkip   uint64 // members skipped by the min(unionO, |y|) bound
	Verified       uint64 // members fully verified
	Results        uint64 // matches emitted
	VerifySteps    uint64 // merge iterations spent verifying (core+delta or full)
	CoreSteps      uint64 // portion of VerifySteps spent on shared cores
	Evicted        uint64 // members evicted
	LiveBundles    uint64
	LiveMembers    uint64
	MaxBundleSize  uint64
	UnionOverlaps  uint64 // union-overlap computations (bundle-level filter)
	UnionSteps     uint64 // merge iterations spent on union bounds
	CoreOverlaps   uint64 // distinct core-overlap computations
	SingletonFast  uint64 // singleton bundles verified directly
	RebuildSweeps  uint64 // posting sweeps triggered
	DeadPostSkips  uint64 // dead bundle postings compacted
	GroupRejectLen uint64 // memberships rejected by MaxMembers/MinCoreFrac

	KernelLinear    uint64 // verification merges run by the linear kernel
	KernelGallop    uint64 // verification merges run by the galloping kernel
	KernelBitset    uint64 // verification merges run by the bitset kernel
	BundleQuickSkip uint64 // bundles skipped by the pre-merge size bound
	MemberDeltaSkip uint64 // members skipped by the core+|delta| bound

	TreeProbes         uint64 // probes answered by the verification tree
	TreeNodesVisited   uint64 // tree nodes descended
	TreeSubtreesPruned uint64 // subtrees cut by candidacy/length/position bounds
	TreeCandsAvoided   uint64 // members skipped with no per-member work at all
	TreeLeafUBSkip     uint64 // anchored members cut by the position bound
	TreeSuffixSkip     uint64 // anchored members cut by the suffix filter
	TreeNodes          uint64 // live tree nodes, excluding the root (gauge)
}

// Pruned sums the candidates the kernel-tier upper bounds discarded
// before any verification merge ran.
func (s Stats) Pruned() uint64 { return s.BundleQuickSkip + s.MemberDeltaSkip }

type fifoEntry struct {
	b *Bundle
	m *Member
}

// Index is the bundle-based streaming joiner. Like index.Inverted it is
// single-writer: each worker bolt owns one.
type Index struct {
	params filter.Params
	win    window.Policy
	cfg    Config

	posts  map[tokens.Rank][]*Bundle
	fifo   []fifoEntry
	head   int
	nextID uint64

	stats Stats
	live  *LiveStats // optional atomic mirror, see PublishLive

	// probe scratch
	cands []*Bundle
	walk  []walkRef
	// probeSeq is the monotonic probe counter stamped into Bundle.lastSeen
	// for per-probe candidate dedup (replaces a per-probe map).
	probeSeq uint64
	// probeP is the probe record's packed form, built once per probe in
	// collectCandidates (single-writer phase) and read-only during the —
	// possibly fanned — verify phase.
	probeP  similarity.Packed
	probeOK bool
	// trial is insert-path scratch for the candidate core intersection
	// (single-writer like the rest of the index, so a plain reused slice
	// beats pooling here; pooled buffers cover the shared helpers in
	// Bundle.add).
	trial []tokens.Rank
	// al slab-allocates members, bundles and deltas on the insert path.
	al alloc

	// root anchors the filter-and-verification tree; nil in collect mode
	// (auto maintains both structures). tw and frontier are the serial
	// descent's reusable walk state and root-fanout scratch.
	root     *treeNode
	tw       treeWalk
	frontier []*treeNode

	// emitBuf buffers one probe's matches so every mode and pool size can
	// flush them in the canonical per-probe order (ascending partner ID);
	// emitAppend is the prebuilt append closure handed to verifiers.
	emitBuf    []Match
	emitAppend func(Match)

	// adaptProbes/adaptMark drive the optional periodic BitsetMinLen
	// re-estimation (see adaptTick).
	adaptProbes uint64
	adaptMark   struct{ linear, gallop, bitset uint64 }
}

// walkRef is one prefix token's posting list in the selectivity-ordered
// walk: pos is the token's prefix position, n the list length at sort
// time.
type walkRef struct {
	pos int32
	n   int32
}

// New returns an empty bundle index.
func New(p filter.Params, w window.Policy, cfg Config) *Index {
	bx := &Index{
		params: p,
		win:    w,
		cfg:    cfg.withDefaults(p.Threshold),
		posts:  make(map[tokens.Rank][]*Bundle),
	}
	if bx.cfg.VerifyMode != VerifyCollect {
		bx.root = &treeNode{}
	}
	bx.emitAppend = func(m Match) { bx.emitBuf = append(bx.emitBuf, m) }
	return bx
}

// Params returns the join parameters.
func (bx *Index) Params() filter.Params { return bx.params }

// Config returns the effective configuration after defaulting.
func (bx *Index) Config() Config { return bx.cfg }

// Stats snapshots the work counters.
func (bx *Index) Stats() Stats {
	s := bx.stats
	s.LiveMembers = uint64(len(bx.fifo) - bx.head)
	return s
}

// LiveStats mirrors the headline Stats counters in atomics so a scrape
// goroutine can read them while the single-writer worker is mid-stream.
// The Index publishes into it once per processed record — the full Stats
// struct stays unsynchronized and is only safe to read after the run.
type LiveStats struct {
	Records    atomic.Uint64
	Candidates atomic.Uint64
	Verified   atomic.Uint64
	Results    atomic.Uint64
	Members    atomic.Uint64

	// Per-kernel verification merges and pre-verify pruned candidates
	// (verify_kernel_* / verify_candidates_pruned_total in /metrics).
	KernelLinear atomic.Uint64
	KernelGallop atomic.Uint64
	KernelBitset atomic.Uint64
	Pruned       atomic.Uint64

	// Tree-mode probe work (verify_tree_* in /metrics).
	TreeProbes         atomic.Uint64
	TreeNodesVisited   atomic.Uint64
	TreeSubtreesPruned atomic.Uint64
	TreeCandsAvoided   atomic.Uint64
	TreeNodes          atomic.Uint64
}

// PublishLive makes the index mirror its counters into ls after every
// processed record. Pass nil to stop publishing.
func (bx *Index) PublishLive(ls *LiveStats) { bx.live = ls }

// publish refreshes the live mirror (no-op unless PublishLive was called).
// It runs once per probe — the one operation every per-record path (Step,
// Process, Load) performs exactly once — so Records counts probes.
func (bx *Index) publish() {
	if bx.live == nil {
		return
	}
	bx.live.Records.Add(1)
	bx.live.Candidates.Store(bx.stats.MemberChecks)
	bx.live.Verified.Store(bx.stats.Verified)
	bx.live.Results.Store(bx.stats.Results)
	bx.live.Members.Store(uint64(len(bx.fifo) - bx.head))
	bx.live.KernelLinear.Store(bx.stats.KernelLinear)
	bx.live.KernelGallop.Store(bx.stats.KernelGallop)
	bx.live.KernelBitset.Store(bx.stats.KernelBitset)
	bx.live.Pruned.Store(bx.stats.Pruned())
	bx.live.TreeProbes.Store(bx.stats.TreeProbes)
	bx.live.TreeNodesVisited.Store(bx.stats.TreeNodesVisited)
	bx.live.TreeSubtreesPruned.Store(bx.stats.TreeSubtreesPruned)
	bx.live.TreeCandsAvoided.Store(bx.stats.TreeCandsAvoided)
	bx.live.TreeNodes.Store(bx.stats.TreeNodes)
}

// finishProbe is the per-probe epilogue every probe path runs exactly
// once: refresh the live mirror, then give the kernel adapter its tick.
func (bx *Index) finishProbe() {
	bx.publish()
	bx.adaptTick()
}

// Process runs one full streaming step for r: evict expired members, probe
// and verify against live bundles, emit every match, then insert r into the
// bundle of its most similar match (or a fresh singleton). This is the
// algorithm the paper's abstract describes: join results guide index
// construction.
func (bx *Index) Process(r *record.Record, emit func(Match)) {
	bx.Evict(r.ID, r.Time)
	best, ok := bx.Probe(r, emit)
	if !ok {
		bx.InsertSingleton(r)
	} else {
		bx.Insert(r, best)
	}
	bx.stats.Records++
}

// Evict expires members outside the window relative to (nowSeq, nowTime).
func (bx *Index) Evict(nowSeq record.ID, nowTime int64) {
	for bx.head < len(bx.fifo) {
		fe := bx.fifo[bx.head]
		rec := fe.m.Rec
		if bx.win.Live(rec.ID, rec.Time, nowSeq, nowTime) {
			break
		}
		fe.m.dead = true
		fe.b.live--
		if bx.maintainTree() {
			l := rec.Len()
			p := bx.params.PrefixLen(l)
			if p > l {
				p = l
			}
			bx.treeRemove(fe.m, rec.Tokens[:p])
		}
		fe.b.removeDead(bx.cfg.Kernel)
		bx.fifo[bx.head] = fifoEntry{}
		bx.head++
		bx.stats.Evicted++
	}
	if bx.head > 64 && bx.head*2 > len(bx.fifo) {
		bx.fifo = append(bx.fifo[:0], bx.fifo[bx.head:]...)
		bx.head = 0
	}
}

// Probe finds all live records similar to r, emits them in the canonical
// per-probe order (ascending partner record ID), and returns the best
// match's bundle together with the best similarity (ok=false when there
// is no match). Verification is exact; emitted overlaps are true
// intersection sizes. The match stream and the insertion hint are
// identical for every VerifyMode, Kernel, and pool size.
func (bx *Index) Probe(r *record.Record, emit func(Match)) (best Insertion, ok bool) {
	if bx.useTree() {
		return bx.probeTree(r, emit)
	}
	cands := bx.collectCandidates(r)
	bx.emitBuf = bx.emitBuf[:0]
	for _, b := range cands {
		if m, found := bx.probeBundle(r, b, &bx.stats, bx.emitAppend); found {
			if !ok || betterIns(m, best) {
				best, ok = m, true
			}
		}
	}
	bx.emitCanonical(emit)
	bx.finishProbe()
	return best, ok
}

// emitCanonical flushes the probe's buffered matches in ascending
// partner-ID order — the canonical emission order shared by collect,
// tree, serial, and pooled probes, which is what makes the four paths
// byte-interchangeable. Each partner appears at most once per probe
// (one member per record), so the order is total. The buffer is the
// concatenation of short sorted runs (per-bundle member order, or DFS
// leaf order), which insertion sort exploits.
//
// hotpath: zero-alloc — runs once per probe over the reused buffer.
func (bx *Index) emitCanonical(emit func(Match)) {
	ms := bx.emitBuf
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Rec.ID < ms[j-1].Rec.ID; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	for i := range ms {
		emit(ms[i])
	}
}

// collectCandidates walks the posting lists of r's prefix tokens in
// ascending posting-list-length order (rarest token first), compacts dead
// postings in place, and returns the distinct candidate bundles in that
// discovery order. Rarest-first is the tree-style selectivity heuristic:
// the bundles sharing a rare token are the likeliest (and, sharing more
// with the probe, typically heaviest) candidates, so they front-load the
// verify order — which also hands the pool's work-stealing loop its
// biggest items first. The order is a deterministic function of index
// state (list length, then prefix position), so parallel and serial runs
// still see identical candidate sequences. Dedup is an epoch stamp on the
// bundle (lastSeen vs probeSeq) instead of a per-probe map. This is the
// single-writer half of the probe path: every posting-list mutation and
// the probe's packed form happen here, before verification starts, so the
// verify phase that follows — serial in Probe, fanned out in ProbePar —
// reads an index nobody is writing. The returned slice is scratch owned
// by the index and valid until the next collectCandidates call.
//
// hotpath: zero-alloc — runs once per probe; the one posts-map write is
// the compaction store of an existing key (baselined).
func (bx *Index) collectCandidates(r *record.Record) []*Bundle {
	cands := bx.cands[:0]
	bx.probeSeq++
	packIf(bx.cfg.Kernel, &bx.probeP, &bx.probeOK, r.Tokens)
	p := bx.params.PrefixLen(r.Len())
	walk := bx.walk[:0]
	for i := 0; i < p; i++ {
		list, have := bx.posts[r.Tokens[i]]
		if !have {
			continue
		}
		walk = append(walk, walkRef{pos: int32(i), n: int32(len(list))})
	}
	// Insertion sort by (length, prefix position): prefixes are short and
	// mostly sorted run-to-run, so this beats sort.Slice and allocates
	// nothing.
	for i := 1; i < len(walk); i++ {
		for j := i; j > 0 && (walk[j].n < walk[j-1].n ||
			(walk[j].n == walk[j-1].n && walk[j].pos < walk[j-1].pos)); j-- {
			walk[j], walk[j-1] = walk[j-1], walk[j]
		}
	}
	bx.walk = walk
	for _, wr := range walk {
		tok := r.Tokens[wr.pos]
		list := bx.posts[tok]
		w := 0
		for _, b := range list {
			if b.live == 0 {
				bx.stats.DeadPostSkips++
				bx.stats.Postings--
				continue // compact dead bundle posting
			}
			list[w] = b
			w++
			bx.stats.Scanned++
			if b.lastSeen == bx.probeSeq {
				continue
			}
			b.lastSeen = bx.probeSeq
			bx.stats.BundleCands++
			cands = append(cands, b)
		}
		if w == 0 {
			delete(bx.posts, tok)
		} else if w != len(list) {
			bx.posts[tok] = list[:w]
		}
	}
	bx.cands = cands
	return cands
}

// Insertion names the bundle an incoming record should join. At is the
// record ID of the best match backing the hint: the canonical rule —
// maximum similarity, ties to the smallest partner ID — makes the pick a
// pure function of the match set, so every verify mode, kernel, and pool
// size drives the identical grouping evolution.
type Insertion struct {
	Bundle *Bundle
	Sim    float64
	At     record.ID
}

// betterIns reports whether insertion hint a beats b under the canonical
// rule. Similarities are computed from identical (overlap, length)
// inputs on every path, so ties compare bitwise-equal floats.
func betterIns(a, b Insertion) bool {
	return a.Sim > b.Sim || (a.Sim == b.Sim && a.At < b.At)
}

// probeBundle filters and verifies r against one candidate bundle, emitting
// matches and returning the best-match insertion hint. Work counters go to
// st — &bx.stats on the serial path, a per-goroutine VerifyCtx on the pool
// path — so concurrent verifiers never share a counter cache line.
//
// parcheck: runs on the verifier pool. It must only read the index (params,
// cfg, postings, bundles): any index mutation belongs in collectCandidates
// or the insert/evict path, which run strictly before and after the fanned
// verify phase.
//
// hotpath: zero-alloc — runs once per candidate bundle per probe; matches
// are emitted as value structs through the emit callback.
func (bx *Index) probeBundle(r *record.Record, b *Bundle, st *Stats, emit func(Match)) (Insertion, bool) {
	la := r.Len()
	// Bundle-level length range check.
	lo, hi := bx.params.LengthBounds(la)
	bmin, bmax := b.MinLen(), b.MaxLen()
	if bmax < lo || bmin > hi {
		st.BundleLenSkip++
		return Insertion{}, false
	}
	reqMin := bx.minRequired(la, bmin, bmax, lo, hi)

	// Singleton fast path: the union is the member, so a single
	// early-terminating merge both filters and verifies.
	if b.live == 1 {
		m := firstLive(b)
		if m == nil {
			return Insertion{}, false
		}
		lb := m.Rec.Len()
		if lb < lo || lb > hi {
			return Insertion{}, false
		}
		st.MemberChecks++
		req := bx.params.RequiredOverlap(la, lb)
		o, steps, ok := bx.overlapKernelBounded(st, r.Tokens, &bx.probeP, bx.probeOK, m.Rec.Tokens, &m.full, m.fullOK, req)
		st.SingletonFast++
		st.VerifySteps += uint64(steps)
		st.Verified++
		if !ok {
			return Insertion{}, false
		}
		sim := similarity.FromOverlap(bx.params.Func, o, la, lb)
		st.Results++
		emit(Match{Rec: m.Rec, Overlap: o, Sim: sim})
		return Insertion{Bundle: b, Sim: sim, At: m.Rec.ID}, true
	}

	// Quick size bound before any merge: overlap(r, y) <= min(la, ly,
	// |Union|) for every member y, and ly <= min(bmax, hi) over the
	// members that survive the length check, while required(y) >= reqMin.
	// When even the best case falls short, the whole bundle is pruned for
	// the cost of three comparisons.
	quickUB := la
	if h := min(bmax, hi); h < quickUB {
		quickUB = h
	}
	if lu := len(b.Union); lu < quickUB {
		quickUB = lu
	}
	if quickUB < reqMin {
		st.BundleQuickSkip++
		return Insertion{}, false
	}

	// Bundle-level union upper bound: overlap(r, y) <= overlap(r, Union)
	// for every member y. One early-terminating merge prunes the whole
	// bundle; on success the overlap is exact and reused per member.
	unionO, usteps, uok := bx.overlapKernelBounded(st, r.Tokens, &bx.probeP, bx.probeOK, b.Union, &b.unionP, b.unionOK, reqMin)
	st.UnionOverlaps++
	st.UnionSteps += uint64(usteps)
	if !uok {
		st.BundleUBSkip++
		return Insertion{}, false
	}

	var (
		coreO     int
		coreSteps int
		haveCore  bool
		best      Insertion
		found     bool
	)
	for _, m := range b.Members {
		if m.dead {
			continue
		}
		lb := m.Rec.Len()
		if lb < lo || lb > hi {
			continue
		}
		st.MemberChecks++
		req := bx.params.RequiredOverlap(la, lb)
		ub := unionO
		if lb < ub {
			ub = lb
		}
		if ub < req {
			st.MemberUBSkip++
			continue
		}
		var o int
		if bx.cfg.OneByOneVerify {
			var steps int
			o, steps = bx.overlapKernel(st, r.Tokens, &bx.probeP, bx.probeOK, m.Rec.Tokens, &m.full, m.fullOK)
			st.VerifySteps += uint64(steps)
		} else {
			if !haveCore {
				coreO, coreSteps = bx.overlapKernel(st, r.Tokens, &bx.probeP, bx.probeOK, b.Core, &b.coreP, b.coreOK)
				haveCore = true
				st.CoreOverlaps++
				st.CoreSteps += uint64(coreSteps)
				st.VerifySteps += uint64(coreSteps)
			}
			// Delta bound: overlap(r, y) = coreO + overlap(r, Delta), and
			// overlap(r, Delta) <= min(|Delta|, la - coreO) because Delta
			// is disjoint from Core while r holds only la tokens, coreO of
			// them already matched in Core. Members whose delta cannot
			// close the gap skip the delta merge entirely.
			dUB := len(m.Delta)
			if rest := la - coreO; rest < dUB {
				dUB = rest
			}
			if coreO+dUB < req {
				st.MemberDeltaSkip++
				continue
			}
			// Bounded delta merge: when it fails the member cannot match
			// (no emission, so the exact size is not needed); when it
			// passes dO is exact and o below is the true overlap.
			dO, dSteps, dok := bx.overlapKernelBounded(st, r.Tokens, &bx.probeP, bx.probeOK, m.Delta, &m.deltaP, m.deltaOK, req-coreO)
			st.VerifySteps += uint64(dSteps)
			if !dok {
				st.Verified++
				continue
			}
			o = coreO + dO
		}
		st.Verified++
		if o < req {
			continue
		}
		sim := similarity.FromOverlap(bx.params.Func, o, la, lb)
		st.Results++
		emit(Match{Rec: m.Rec, Overlap: o, Sim: sim})
		if !found || betterIns(Insertion{Sim: sim, At: m.Rec.ID}, best) {
			best, found = Insertion{Bundle: b, Sim: sim, At: m.Rec.ID}, true
		}
	}
	return best, found
}

// mergeVerify folds the verify-phase counters a VerifyCtx accumulated into
// s. Only the counters probeBundle writes are listed: everything else in
// Stats belongs to the single-writer collect/insert/evict path and never
// appears in a per-goroutine context. All listed counters are commutative
// sums, so the fold order across contexts cannot change the totals — a
// parallel run reports exactly the sequential numbers.
func (s *Stats) mergeVerify(o *Stats) {
	s.BundleLenSkip += o.BundleLenSkip
	s.BundleUBSkip += o.BundleUBSkip
	s.MemberChecks += o.MemberChecks
	s.MemberUBSkip += o.MemberUBSkip
	s.Verified += o.Verified
	s.Results += o.Results
	s.VerifySteps += o.VerifySteps
	s.CoreSteps += o.CoreSteps
	s.UnionOverlaps += o.UnionOverlaps
	s.UnionSteps += o.UnionSteps
	s.CoreOverlaps += o.CoreOverlaps
	s.SingletonFast += o.SingletonFast
	s.KernelLinear += o.KernelLinear
	s.KernelGallop += o.KernelGallop
	s.KernelBitset += o.KernelBitset
	s.BundleQuickSkip += o.BundleQuickSkip
	s.MemberDeltaSkip += o.MemberDeltaSkip
	s.TreeNodesVisited += o.TreeNodesVisited
	s.TreeSubtreesPruned += o.TreeSubtreesPruned
	s.TreeCandsAvoided += o.TreeCandsAvoided
	s.TreeLeafUBSkip += o.TreeLeafUBSkip
	s.TreeSuffixSkip += o.TreeSuffixSkip
}

// Dump visits every live member record in arrival order; returning false
// stops the walk.
func (bx *Index) Dump(visit func(*record.Record) bool) {
	for i := bx.head; i < len(bx.fifo); i++ {
		fe := bx.fifo[i]
		if fe.m == nil || fe.m.dead {
			continue
		}
		if !visit(fe.m.Rec) {
			return
		}
	}
}

// firstLive returns the first live member (nil when none).
func firstLive(b *Bundle) *Member {
	for _, m := range b.Members {
		if !m.dead {
			return m
		}
	}
	return nil
}

// minRequired returns the smallest required overlap over member lengths in
// [max(bmin,lo), min(bmax,hi)]. For all supported functions the required
// overlap is nondecreasing in partner length, so the minimum is at the
// smallest compatible length.
func (bx *Index) minRequired(la, bmin, bmax, lo, hi int) int {
	l := bmin
	if lo > l {
		l = lo
	}
	return bx.params.RequiredOverlap(la, l)
}

// InsertSingleton places r into a fresh singleton bundle (the no-match
// insertion path).
func (bx *Index) InsertSingleton(r *record.Record) {
	bx.Insert(r, Insertion{})
}

// Insert places r into best's bundle when grouping conditions hold,
// otherwise into a fresh singleton bundle, and extends the posting lists
// with the record's unposted prefix tokens.
func (bx *Index) Insert(r *record.Record, best Insertion) {
	p := bx.params.PrefixLen(r.Len())
	var (
		target  *Bundle
		newCore []tokens.Rank
	)
	if best.Bundle != nil && best.Sim >= bx.cfg.GroupThreshold-1e-12 {
		b := best.Bundle
		if b.live < bx.cfg.MaxMembers {
			// Trial intersection in reused scratch: add() consumes it when
			// the membership is accepted, so the merge runs exactly once
			// and the rejected case allocates nothing.
			bx.trial = similarity.IntersectInto(bx.trial[:0], b.Core, r.Tokens)
			if float64(len(bx.trial)) >= bx.cfg.MinCoreFrac*float64(r.Len()) {
				target = b
				newCore = bx.trial
			} else {
				bx.stats.GroupRejectLen++
			}
		} else {
			bx.stats.GroupRejectLen++
		}
	}
	if target == nil {
		bx.nextID++
		target = bx.al.bundle()
		target.ID = bx.nextID
		bx.stats.Bundles++
		bx.stats.LiveBundles++
	} else {
		bx.stats.Appends++
	}
	newPosts := target.add(&bx.al, bx.cfg.Kernel, r, p, newCore)
	if bx.cfg.VerifyMode != VerifyTree {
		// Pure tree mode never reads posting lists — and never compacts
		// them (compaction lives in collectCandidates), so extending them
		// would leak dead postings. Auto maintains both structures.
		for _, tok := range newPosts {
			bx.posts[tok] = append(bx.posts[tok], target)
		}
		bx.stats.Postings += uint64(len(newPosts))
	}
	if bx.maintainTree() {
		pl := p
		if pl > r.Len() {
			pl = r.Len()
		}
		bx.treeInsert(target, target.Members[len(target.Members)-1], r.Tokens[:pl])
	}
	if uint64(target.live) > bx.stats.MaxBundleSize {
		bx.stats.MaxBundleSize = uint64(target.live)
	}
	bx.fifo = append(bx.fifo, fifoEntry{b: target, m: target.Members[len(target.Members)-1]})
}
