package bundle

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

func params(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

func rec(id record.ID, ranks ...tokens.Rank) *record.Record {
	return &record.Record{ID: id, Time: int64(id), Tokens: tokens.Dedup(ranks)}
}

func TestSetOps(t *testing.T) {
	a := []tokens.Rank{1, 3, 5, 7}
	b := []tokens.Rank{3, 4, 5}
	if got := intersect(a, b); !reflect.DeepEqual(got, []tokens.Rank{3, 5}) {
		t.Fatalf("intersect: %v", got)
	}
	if got := subtract(a, b); !reflect.DeepEqual(got, []tokens.Rank{1, 7}) {
		t.Fatalf("subtract: %v", got)
	}
	if got := union(a, b); !reflect.DeepEqual(got, []tokens.Rank{1, 3, 4, 5, 7}) {
		t.Fatalf("union: %v", got)
	}
	if got := union(nil, b); !reflect.DeepEqual(got, b) {
		t.Fatalf("union nil: %v", got)
	}
}

func TestOverlapSteps(t *testing.T) {
	o, steps := overlapSteps([]tokens.Rank{1, 2, 3}, []tokens.Rank{2, 3, 4})
	if o != 2 {
		t.Fatalf("overlap: %d", o)
	}
	if steps == 0 {
		t.Fatal("steps not counted")
	}
}

// checkInvariants asserts the core/delta/union algebra of a bundle.
func checkInvariants(t *testing.T, b *Bundle) {
	t.Helper()
	for _, m := range b.Members {
		if m.dead {
			continue
		}
		// Core ⊆ member tokens.
		if got := intersect(b.Core, m.Rec.Tokens); len(got) != len(b.Core) {
			t.Fatalf("core not subset of member %d: core=%v tokens=%v",
				m.Rec.ID, b.Core, m.Rec.Tokens)
		}
		// Core ∪ Delta == member tokens exactly.
		recon := merge(b.Core, m.Delta)
		if !reflect.DeepEqual(recon, m.Rec.Tokens) {
			t.Fatalf("core+delta != tokens for member %d: %v vs %v",
				m.Rec.ID, recon, m.Rec.Tokens)
		}
		// Core ∩ Delta == ∅.
		if len(intersect(b.Core, m.Delta)) != 0 {
			t.Fatalf("core and delta overlap for member %d", m.Rec.ID)
		}
		// Member ⊆ Union.
		if got := intersect(b.Union, m.Rec.Tokens); len(got) != len(m.Rec.Tokens) {
			t.Fatalf("member %d not subset of union", m.Rec.ID)
		}
	}
}

// addRec calls Bundle.add the way Index.Insert does: the trial core
// (core ∩ r.Tokens) is computed by the caller and threaded through.
func addRec(b *Bundle, r *record.Record, prefixLen int) []tokens.Rank {
	var newCore []tokens.Rank
	if b.Live() > 0 {
		newCore = intersect(b.Core, r.Tokens)
	}
	var al alloc
	return b.add(&al, similarity.KernelConfig{}.WithDefaults(), r, prefixLen, newCore)
}

func TestBundleAddMaintainsInvariants(t *testing.T) {
	b := &Bundle{ID: 1}
	recs := []*record.Record{
		rec(0, 1, 2, 3, 4, 5),
		rec(1, 1, 2, 3, 4, 6),
		rec(2, 2, 3, 4, 5, 6),
		rec(3, 1, 2, 3, 9, 10),
	}
	for _, r := range recs {
		addRec(b, r, 2)
		checkInvariants(t, b)
	}
	// Core must be the intersection of all four: {2,3}
	if !reflect.DeepEqual(b.Core, []tokens.Rank{2, 3}) {
		t.Fatalf("core: got %v want [2 3]", b.Core)
	}
}

func TestBundleAddReportsOnlyNewPostings(t *testing.T) {
	b := &Bundle{ID: 1}
	first := addRec(b, rec(0, 1, 2, 3, 4), 2)
	if !reflect.DeepEqual(first, []tokens.Rank{1, 2}) {
		t.Fatalf("first postings: %v", first)
	}
	second := addRec(b, rec(1, 1, 2, 3, 5), 2)
	if len(second) != 0 {
		t.Fatalf("duplicate postings issued: %v", second)
	}
	third := addRec(b, rec(2, 1, 7, 8, 9), 2)
	if !reflect.DeepEqual(third, []tokens.Rank{7}) {
		t.Fatalf("third postings: %v", third)
	}
}

func TestProcessFindsDuplicates(t *testing.T) {
	bx := New(params(0.8), window.Unbounded{}, Config{})
	var matches []Match
	bx.Process(rec(0, 1, 2, 3, 4, 5), func(m Match) { matches = append(matches, m) })
	bx.Process(rec(1, 1, 2, 3, 4, 5), func(m Match) { matches = append(matches, m) })
	if len(matches) != 1 || matches[0].Rec.ID != 0 {
		t.Fatalf("matches: %v", matches)
	}
	if matches[0].Sim != 1.0 {
		t.Fatalf("sim: %v", matches[0].Sim)
	}
	// The duplicate must have been appended, not given a new bundle.
	st := bx.Stats()
	if st.Bundles != 1 || st.Appends != 1 {
		t.Fatalf("grouping: bundles=%d appends=%d", st.Bundles, st.Appends)
	}
}

func TestSingletonWhenNoMatch(t *testing.T) {
	bx := New(params(0.8), window.Unbounded{}, Config{})
	bx.Process(rec(0, 1, 2, 3), func(Match) {})
	bx.Process(rec(1, 10, 11, 12), func(Match) {})
	if st := bx.Stats(); st.Bundles != 2 || st.Appends != 0 {
		t.Fatalf("bundles=%d appends=%d", st.Bundles, st.Appends)
	}
}

func TestMaxMembersCapsBundles(t *testing.T) {
	bx := New(params(0.8), window.Unbounded{}, Config{MaxMembers: 2})
	for i := 0; i < 4; i++ {
		bx.Process(rec(record.ID(i), 1, 2, 3, 4, 5), func(Match) {})
	}
	st := bx.Stats()
	if st.MaxBundleSize > 2 {
		t.Fatalf("bundle grew past cap: %d", st.MaxBundleSize)
	}
	if st.Bundles < 2 {
		t.Fatalf("expected at least 2 bundles, got %d", st.Bundles)
	}
}

func TestMinCoreFracRejectsWeakGroups(t *testing.T) {
	// Two records with sim exactly at τ but small intersection relative to
	// their length would shrink the core too much with MinCoreFrac close
	// to 1.
	bx := New(params(0.5), window.Unbounded{}, Config{MinCoreFrac: 0.99})
	bx.Process(rec(0, 1, 2, 3, 4), func(Match) {})
	// sim = 3/5 = 0.6 >= 0.5 but core would be 3 < 0.99*4
	bx.Process(rec(1, 1, 2, 3, 9), func(Match) {})
	if st := bx.Stats(); st.Appends != 0 {
		t.Fatalf("append happened despite MinCoreFrac: %+v", st)
	}
}

func TestEvictionRemovesMembers(t *testing.T) {
	bx := New(params(0.8), window.Count{N: 1}, Config{})
	got := 0
	bx.Process(rec(0, 1, 2, 3, 4), func(Match) { got++ })
	bx.Process(rec(1, 1, 2, 3, 4), func(Match) { got++ }) // finds 0
	bx.Process(rec(3, 1, 2, 3, 4), func(Match) { got++ }) // 0 and 1 expired (N=1)
	if got != 1 {                                         // only the match at step 2; at seq 3 both partners are dead
		t.Fatalf("matches: got %d want 1", got)
	}
	if st := bx.Stats(); st.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestBundleJoinMatchesBruteForce is the headline correctness property: the
// bundle-based joiner must produce exactly the same result pairs as a
// brute-force scan, across thresholds, windows, verification modes, and
// grouping configs.
func TestBundleJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	configs := []Config{
		{},
		{OneByOneVerify: true},
		{MaxMembers: 3},
		{GroupThreshold: 0.95},
		{MinCoreFrac: 0.8},
	}
	for _, tau := range []float64{0.5, 0.7, 0.85} {
		for _, win := range []window.Policy{window.Unbounded{}, window.Count{N: 25}} {
			for ci, cfg := range configs {
				bx := New(params(tau), win, cfg)
				stream := duplicateHeavyStream(rng, 220, 50)
				got := make(map[record.Pair]bool)
				for _, r := range stream {
					bx.Process(r, func(m Match) {
						got[record.NewPair(r.ID, m.Rec.ID, 0)] = true
						// Overlap reported must be exact.
						if truth := similarity.IntersectSize(r.Tokens, m.Rec.Tokens); truth != m.Overlap {
							t.Fatalf("overlap wrong: got %d want %d", m.Overlap, truth)
						}
					})
				}
				want := bruteForce(stream, tau, win)
				if len(got) != len(want) {
					t.Fatalf("τ=%v win=%v cfg#%d: got %d pairs want %d",
						tau, win, ci, len(got), len(want))
				}
				for pr := range want {
					if !got[pr] {
						t.Fatalf("τ=%v win=%v cfg#%d: missing %v", tau, win, ci, pr)
					}
				}
			}
		}
	}
}

// duplicateHeavyStream produces clusters of near-duplicates — the workload
// bundling exists for.
func duplicateHeavyStream(rng *rand.Rand, n, universe int) []*record.Record {
	var stream []*record.Record
	var protos [][]tokens.Rank
	for i := 0; i < n; i++ {
		var set []tokens.Rank
		if len(protos) > 0 && rng.Float64() < 0.6 {
			proto := protos[rng.Intn(len(protos))]
			set = append([]tokens.Rank{}, proto...)
			// mutate one token sometimes
			if rng.Float64() < 0.5 && len(set) > 1 {
				set[rng.Intn(len(set))] = tokens.Rank(rng.Intn(universe))
			}
		} else {
			m := 3 + rng.Intn(10)
			for len(set) < m {
				set = append(set, tokens.Rank(rng.Intn(universe)))
			}
			protos = append(protos, set)
		}
		stream = append(stream, rec(record.ID(i), set...))
	}
	return stream
}

func bruteForce(stream []*record.Record, tau float64, win window.Policy) map[record.Pair]bool {
	out := make(map[record.Pair]bool)
	for i, r := range stream {
		for j := 0; j < i; j++ {
			s := stream[j]
			if !win.Live(s.ID, s.Time, r.ID, r.Time) {
				continue
			}
			if similarity.Of(similarity.Jaccard, r.Tokens, s.Tokens) >= tau-1e-12 {
				out[record.NewPair(r.ID, s.ID, 0)] = true
			}
		}
	}
	return out
}

func TestBatchVerificationSavesSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	stream := duplicateHeavyStream(rng, 600, 40)
	run := func(oneByOne bool) Stats {
		bx := New(params(0.6), window.Unbounded{}, Config{OneByOneVerify: oneByOne})
		for _, r := range stream {
			bx.Process(r, func(Match) {})
		}
		return bx.Stats()
	}
	batch := run(false)
	singly := run(true)
	if batch.Results != singly.Results {
		t.Fatalf("result mismatch: batch=%d single=%d", batch.Results, singly.Results)
	}
	if batch.VerifySteps >= singly.VerifySteps {
		t.Fatalf("batch verification not cheaper: batch=%d steps vs single=%d",
			batch.VerifySteps, singly.VerifySteps)
	}
}

func TestBundlingReducesPostings(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	stream := duplicateHeavyStream(rng, 600, 40)
	grouped := New(params(0.6), window.Unbounded{}, Config{})
	solo := New(params(0.6), window.Unbounded{}, Config{GroupThreshold: 2.0}) // never group
	for _, r := range stream {
		grouped.Process(r, func(Match) {})
		solo.Process(r, func(Match) {})
	}
	if g, s := grouped.Stats().Postings, solo.Stats().Postings; g >= s {
		t.Fatalf("bundling did not reduce postings: grouped=%d solo=%d", g, s)
	}
}

func TestRemoveDeadRebuildsUnion(t *testing.T) {
	b := &Bundle{ID: 1}
	addRec(b, rec(0, 1, 2, 3), 1)
	addRec(b, rec(1, 1, 2, 4), 1)
	addRec(b, rec(2, 1, 2, 5), 1)
	addRec(b, rec(3, 1, 2, 6), 1)
	// kill 3 of 4 → shrink rebuild must fire
	for _, m := range b.Members[:3] {
		m.dead = true
		b.live--
	}
	b.removeDead(similarity.KernelConfig{}.WithDefaults())
	if len(b.Members) != 1 {
		t.Fatalf("members after removeDead: %d", len(b.Members))
	}
	if !reflect.DeepEqual(b.Union, []tokens.Rank{1, 2, 6}) {
		t.Fatalf("union not rebuilt: %v", b.Union)
	}
}

func TestConfigDefaults(t *testing.T) {
	bx := New(params(0.7), window.Unbounded{}, Config{})
	cfg := bx.Config()
	if cfg.GroupThreshold != 0.7 || cfg.MaxMembers != 64 || cfg.MinCoreFrac != 0.5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}
