// Candidate-free verification: a path-compressed filter-and-verification
// tree (FVT) over the member prefixes of the bundle index. Probing
// descends shared-prefix paths once instead of walking posting lists,
// applies the filter predicates (length, position, suffix) at interior
// nodes — pruning whole subtrees instead of individual candidates — and
// accumulates the probe/member overlap on the way down, so reaching a
// leaf needs only a resume merge of the two suffixes: no candidate slice
// is ever materialized and no verification restarts from token zero.
//
// Soundness rests on three exact identities over ascending token sets:
//
//   - Prefix filter at nodes: every token on a tree path lies in the
//     member's probing prefix, so a probe-prefix token matched on the
//     path (`matched` below) is exactly the prefix-filter witness. A
//     subtree whose token range [seg[0], maxTok] cannot meet the probe's
//     remaining prefix tokens holds no candidates at all.
//   - Position filter at nodes: for any member y below a node reached
//     with acc matches, jr probe tokens consumed, and depth path tokens
//     consumed, overlap(r,y) <= acc + min(la-jr, ly-depth). Maximizing
//     over the subtree's (conservative) length range prunes the subtree.
//   - Resume merge at leaves: path tokens y[:depth] and consumed probe
//     tokens r[:jr] are disjoint from the opposite suffixes (ascending
//     order), so overlap(r,y) = acc + |r[jr:] ∩ y[depth:]| exactly.
//
// The tree is maintained incrementally under window insert/evict (SWOOP
// style): inserts splice one path, evictions decrement counts up the
// path and drop empty nodes, and a node whose live count halves below
// its peak gets its aggregates recomputed exactly — between rebuilds the
// minLen/maxLen/maxTok aggregates are stale-conservative, which keeps
// every prune sound.
//
// Every kernel and every pool size emits the byte-identical match stream
// as collect mode: verification is exact in both, the per-probe emission
// order is canonicalized (ascending partner ID, see emitCanonical), and
// the best-insertion rule is canonical too (max similarity, ties to the
// smallest partner ID), so grouping — and therefore index evolution — is
// mode-invariant.
package bundle

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
)

// VerifyMode selects how a probe turns the index into verified matches.
type VerifyMode uint8

const (
	// VerifyCollect is the classic two-phase path: collect candidate
	// bundles from posting lists, then verify each. The zero value.
	VerifyCollect VerifyMode = iota
	// VerifyTree descends the filter-and-verification tree, producing
	// verified matches directly with no candidate list.
	VerifyTree
	// VerifyAuto maintains both structures and picks per probe: tree
	// once the window holds enough live members for shared-prefix
	// descent to pay off, collect below that.
	VerifyAuto
)

// autoTreeMinLive is the live-member count at which VerifyAuto switches
// a probe from collect to tree. Deterministic in index state, so serial
// and pooled runs make identical choices.
const autoTreeMinLive = 128

// treeSuffixDepth and treeSuffixMin gate the suffix filter at leaves:
// the partition bound is probed treeSuffixDepth levels deep, and only
// when both suffixes still hold at least treeSuffixMin tokens (below
// that the bounded merge is as cheap as the bound).
const (
	treeSuffixDepth = 2
	treeSuffixMin   = 16
)

// String implements fmt.Stringer.
func (v VerifyMode) String() string {
	switch v {
	case VerifyCollect:
		return "collect"
	case VerifyTree:
		return "tree"
	case VerifyAuto:
		return "auto"
	default:
		return fmt.Sprintf("VerifyMode(%d)", int(v))
	}
}

// ParseVerifyMode converts a name produced by String back into a
// VerifyMode. The empty string means collect (the default).
func ParseVerifyMode(name string) (VerifyMode, error) {
	switch name {
	case "", "collect":
		return VerifyCollect, nil
	case "tree":
		return VerifyTree, nil
	case "auto":
		return VerifyAuto, nil
	default:
		return 0, fmt.Errorf("bundle: unknown verify mode %q", name)
	}
}

// leafEntry anchors one live member at the tree node where its probing
// prefix ends, together with its bundle (the insertion hint target).
type leafEntry struct {
	b *Bundle
	m *Member
}

// treeNode is one path-compressed node: seg is the run of member-prefix
// tokens between the parent's split point and this node's, children are
// ordered by their distinct first tokens, and leaf holds the members
// whose whole prefix is the path down to here. The aggregates summarize
// the subtree for node-level filtering; between shrink rebuilds they are
// conservative (never tighter than the live contents).
type treeNode struct {
	seg      []tokens.Rank // aliases immutable record tokens
	children []*treeNode   // sorted by seg[0]
	leaf     []leafEntry

	minLen, maxLen int         // live member length range in subtree
	count, peak    int         // live members below; peak since last rebuild
	maxTok         tokens.Rank // max token on any path in subtree
}

// findChild returns the index of the first child with seg[0] >= t.
func (n *treeNode) findChild(t tokens.Rank) int {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.children[mid].seg[0] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func commonPrefix(a, b []tokens.Rank) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// maintainTree reports whether insert/evict must keep the tree current
// (tree and auto modes; auto maintains both structures).
func (bx *Index) maintainTree() bool { return bx.root != nil }

// useTree reports whether the next probe takes the tree path. The
// decision is a pure function of configuration and live-member count, so
// every pool size — and a replay of the same stream — picks identically.
func (bx *Index) useTree() bool {
	switch bx.cfg.VerifyMode {
	case VerifyTree:
		return true
	case VerifyAuto:
		return len(bx.fifo)-bx.head >= autoTreeMinLive
	default:
		return false
	}
}

// treeInsert splices member m of bundle b under its probing prefix,
// updating aggregates along the path. Segments alias the record's
// immutable token storage, so an insert allocates only the nodes it
// creates.
func (bx *Index) treeInsert(b *Bundle, m *Member, prefix []tokens.Rank) {
	ln := m.Rec.Len()
	var last tokens.Rank
	if len(prefix) > 0 {
		last = prefix[len(prefix)-1]
	}
	n := bx.root
	for {
		n.count++
		if n.count > n.peak {
			n.peak = n.count
		}
		if n.minLen == 0 || ln < n.minLen {
			n.minLen = ln
		}
		if ln > n.maxLen {
			n.maxLen = ln
		}
		if last > n.maxTok {
			n.maxTok = last
		}
		if len(prefix) == 0 {
			n.leaf = append(n.leaf, leafEntry{b: b, m: m})
			return
		}
		ci := n.findChild(prefix[0])
		if ci == len(n.children) || n.children[ci].seg[0] != prefix[0] {
			c := &treeNode{
				seg: prefix, leaf: []leafEntry{{b: b, m: m}},
				minLen: ln, maxLen: ln, count: 1, peak: 1, maxTok: last,
			}
			n.children = append(n.children, nil)
			copy(n.children[ci+1:], n.children[ci:])
			n.children[ci] = c
			bx.stats.TreeNodes++
			return
		}
		c := n.children[ci]
		k := commonPrefix(c.seg, prefix)
		if k < len(c.seg) {
			// Split c: a tail node inherits c's contents and aggregates
			// (the subtree is unchanged), c keeps the shared segment.
			tail := &treeNode{
				seg: c.seg[k:], children: c.children, leaf: c.leaf,
				minLen: c.minLen, maxLen: c.maxLen,
				count: c.count, peak: c.count, maxTok: c.maxTok,
			}
			c.seg = c.seg[:k]
			c.children = []*treeNode{tail}
			c.leaf = nil
			c.peak = c.count
			bx.stats.TreeNodes++
		}
		prefix = prefix[k:]
		n = c
	}
}

// treeRemove detaches m's leaf entry, decrementing counts up the path,
// dropping emptied nodes, and rebuilding aggregates of any node whose
// live count fell to half its peak (the same shrink heuristic as
// Bundle.removeDead — amortized O(subtree) over a halving).
func (bx *Index) treeRemove(m *Member, prefix []tokens.Rank) {
	bx.treeRemoveAt(bx.root, m, prefix)
}

func (bx *Index) treeRemoveAt(n *treeNode, m *Member, rest []tokens.Rank) {
	n.count--
	if len(rest) == 0 {
		for i := range n.leaf {
			if n.leaf[i].m == m {
				n.leaf = append(n.leaf[:i], n.leaf[i+1:]...)
				break
			}
		}
	} else {
		ci := n.findChild(rest[0])
		c := n.children[ci]
		bx.treeRemoveAt(c, m, rest[len(c.seg):])
		if c.count == 0 {
			n.children = append(n.children[:ci], n.children[ci+1:]...)
			bx.stats.TreeNodes--
		}
	}
	if n.count > 0 && n.count*2 <= n.peak {
		recomputeTree(n)
	}
}

// recomputeTree rebuilds the subtree aggregates exactly and resets the
// rebuild peaks.
func recomputeTree(n *treeNode) {
	n.minLen, n.maxLen = 0, 0
	n.maxTok = 0
	if len(n.seg) > 0 {
		n.maxTok = n.seg[len(n.seg)-1]
	}
	for i := range n.leaf {
		l := n.leaf[i].m.Rec.Len()
		if n.minLen == 0 || l < n.minLen {
			n.minLen = l
		}
		if l > n.maxLen {
			n.maxLen = l
		}
	}
	for _, c := range n.children {
		recomputeTree(c)
		if n.minLen == 0 || c.minLen < n.minLen {
			n.minLen = c.minLen
		}
		if c.maxLen > n.maxLen {
			n.maxLen = c.maxLen
		}
		if c.maxTok > n.maxTok {
			n.maxTok = c.maxTok
		}
	}
	n.peak = n.count
}

// treeWalk is the per-goroutine state of one tree descent: the probe's
// invariant parameters plus the walker's private stats, match sink, and
// best-insertion accumulator. The serial path uses the index-owned walk;
// each pool VerifyCtx carries its own, so fanned descents share no
// mutable state.
type treeWalk struct {
	bx *Index
	r  *record.Record
	rt []tokens.Rank

	la, pa int         // probe length, probe prefix length
	lo, hi int         // compatible partner length range
	maxPre tokens.Rank // last probe prefix token

	st      *Stats
	collect func(Match)
	best    Insertion
	found   bool
}

// prep binds w to probe r under bx. Called once per probe per context
// that participates in the descent.
func (w *treeWalk) prep(bx *Index, r *record.Record) {
	w.bx, w.r, w.rt = bx, r, r.Tokens
	w.la = r.Len()
	w.pa = bx.params.PrefixLen(w.la)
	if w.pa > w.la {
		w.pa = w.la
	}
	w.lo, w.hi = bx.params.LengthBounds(w.la)
	w.maxPre = 0
	if w.pa > 0 {
		w.maxPre = w.rt[w.pa-1]
	}
	w.best, w.found = Insertion{}, false
}

// release drops the walk's pointers so a parked pool context does not
// retain the last probe's record.
func (w *treeWalk) release() {
	w.bx, w.r, w.rt = nil, nil, nil
}

// pruneChild decides whether child c's whole subtree can be skipped,
// given the descent state at its parent (jr probe tokens and depth path
// tokens consumed, acc matches, matched = prefix witness found). Every
// prune is counted; each is conservative, so pruning never changes the
// match stream.
//
// parcheck: runs on the verifier pool. Reads the tree; writes only w.
//
// hotpath: zero-alloc — runs once per (visited node, child).
func (w *treeWalk) pruneChild(c *treeNode, jr, acc, depth int, matched bool) bool {
	if !matched {
		// Prefix candidacy: the subtree's tokens lie in [seg[0], maxTok];
		// without a witness so far, some remaining probe prefix token
		// must fall in that range. Probe tokens before jr are already
		// strictly below every subtree token, so the scan resumes at jr.
		if c.seg[0] > w.maxPre {
			w.st.TreeSubtreesPruned++
			w.st.TreeCandsAvoided += uint64(c.count)
			return true
		}
		k := jr
		for k < w.pa && w.rt[k] < c.seg[0] {
			k++
		}
		if k >= w.pa || w.rt[k] > c.maxTok {
			w.st.TreeSubtreesPruned++
			w.st.TreeCandsAvoided += uint64(c.count)
			return true
		}
	}
	// Length filter over the subtree's (conservative) length range.
	if c.maxLen < w.lo || c.minLen > w.hi {
		w.st.TreeSubtreesPruned++
		w.st.TreeCandsAvoided += uint64(c.count)
		return true
	}
	// Position filter generalized to the subtree: the overlap upper bound
	// is maximized over compatible member lengths, the requirement
	// minimized (required overlap is nondecreasing in partner length).
	ml := c.minLen
	if w.lo > ml {
		ml = w.lo
	}
	ub := acc + min(w.la-jr, min(c.maxLen, w.hi)-depth)
	if ub < w.bx.params.RequiredOverlap(w.la, ml) {
		w.st.TreeSubtreesPruned++
		w.st.TreeCandsAvoided += uint64(c.count)
		return true
	}
	return false
}

// descend consumes n's segment against the probe, verifies the members
// anchored at n, and recurses into the children that survive pruning.
//
// parcheck: runs on the verifier pool. Reads the index and tree; all
// writes go to w (per-goroutine walk state).
//
// hotpath: zero-alloc — the probe inner loop of tree mode.
func (w *treeWalk) descend(n *treeNode, jr, acc, depth int, matched bool) {
	w.st.TreeNodesVisited++
	for _, t := range n.seg {
		for jr < w.la && w.rt[jr] < t {
			jr++
		}
		if jr < w.la && w.rt[jr] == t {
			if jr < w.pa {
				matched = true
			}
			acc++
			jr++
		}
		depth++
	}
	for i := range n.leaf {
		w.verifyLeaf(&n.leaf[i], jr, acc, depth, matched)
	}
	for _, c := range n.children {
		if w.pruneChild(c, jr, acc, depth, matched) {
			continue
		}
		w.descend(c, jr, acc, depth, matched)
	}
}

// verifyLeaf finishes one member: leaf-level filters, then a resume
// merge of the suffixes (or a full packed-bitset verify when the kernel
// dispatch prefers it). A passing member is emitted with its exact
// overlap — the match needs no further verification anywhere.
//
// parcheck: runs on the verifier pool. Reads the index and cached packed
// forms; all writes go to w.
//
// hotpath: zero-alloc — one call per anchored member on a visited node.
func (w *treeWalk) verifyLeaf(le *leafEntry, jr, acc, depth int, matched bool) {
	if !matched {
		// No shared prefix token: not a candidate. Collect mode may still
		// have verified this member through a bundle sibling's posting —
		// the avoided work the tree exists to cut.
		w.st.TreeCandsAvoided++
		return
	}
	y := le.m
	ly := y.Rec.Len()
	if ly < w.lo || ly > w.hi {
		return
	}
	w.st.MemberChecks++
	req := w.bx.params.RequiredOverlap(w.la, ly)
	if acc+min(w.la-jr, ly-depth) < req {
		w.st.TreeLeafUBSkip++
		return
	}
	sa, sb := w.rt[jr:], y.Rec.Tokens[depth:]
	if len(sa) >= treeSuffixMin && len(sb) >= treeSuffixMin &&
		acc+filter.SuffixBound(sa, sb, treeSuffixDepth) < req {
		w.st.TreeSuffixSkip++
		return
	}
	kern := w.bx.cfg.Kernel
	ap, bp := &w.bx.probeP, &y.full
	if !w.bx.probeOK {
		ap = nil
	}
	if !y.fullOK {
		bp = nil
	}
	var (
		o, steps int
		ok       bool
	)
	if kern.Choose(w.la, ly, ap, bp) == similarity.KernelBitset {
		// Full packed verify: cheaper than the element-wise resume merge
		// when both sides carry dense packed forms.
		w.st.KernelBitset++
		o, steps, ok = similarity.VerifyOverlapPacked(ap, bp, req)
	} else {
		// Resume merge: overlap(r,y) = acc + |r[jr:] ∩ y[depth:]| exactly
		// (the consumed prefixes are disjoint from the opposite suffixes).
		var so int
		if kern.Choose(len(sa), len(sb), nil, nil) == similarity.KernelGallop {
			w.st.KernelGallop++
			so, steps, ok = similarity.VerifyOverlapGallop(sa, sb, req-acc)
		} else {
			w.st.KernelLinear++
			so, steps, ok = overlapStepsBounded(sa, sb, req-acc)
		}
		o = acc + so
	}
	w.st.Verified++
	w.st.VerifySteps += uint64(steps)
	if !ok {
		return
	}
	sim := similarity.FromOverlap(w.bx.params.Func, o, w.la, ly)
	w.st.Results++
	w.collect(Match{Rec: y.Rec, Overlap: o, Sim: sim})
	if !w.found || betterIns(Insertion{Sim: sim, At: y.Rec.ID}, w.best) {
		w.best = Insertion{Bundle: le.b, Sim: sim, At: y.Rec.ID}
		w.found = true
	}
}

// expandRoot performs the root step of a descent — visit the root,
// verify its (never-candidate, empty-prefix) members, prune its children
// — and appends the surviving children to dst. Serial and pooled probes
// share it, so their counter totals agree exactly.
//
// hotpath: zero-alloc — dst is caller-owned reusable scratch.
func (w *treeWalk) expandRoot(dst []*treeNode) []*treeNode {
	root := w.bx.root
	w.st.TreeNodesVisited++
	for i := range root.leaf {
		w.verifyLeaf(&root.leaf[i], 0, 0, 0, false)
	}
	for _, c := range root.children {
		if w.pruneChild(c, 0, 0, 0, false) {
			continue
		}
		dst = append(dst, c)
	}
	return dst
}

// probeTree is the serial candidate-free probe: one descent from the
// root, canonical flush of the buffered matches, done. Matches leave the
// tree already verified.
func (bx *Index) probeTree(r *record.Record, emit func(Match)) (best Insertion, ok bool) {
	bx.stats.TreeProbes++
	packIf(bx.cfg.Kernel, &bx.probeP, &bx.probeOK, r.Tokens)
	w := &bx.tw
	w.prep(bx, r)
	w.st, w.collect = &bx.stats, bx.emitAppend
	bx.emitBuf = bx.emitBuf[:0]
	if w.pa > 0 {
		bx.frontier = w.expandRoot(bx.frontier[:0])
		for _, c := range bx.frontier {
			w.descend(c, 0, 0, 0, false)
		}
	}
	best, ok = w.best, w.found
	w.release()
	bx.emitCanonical(emit)
	bx.finishProbe()
	return best, ok
}
