// Kernel dispatch for the verify phase: every intersection in probeBundle
// funnels through overlapKernel/overlapKernelBounded, which pick the
// linear merge, the galloping merge, or the packed-bitset intersection
// per similarity.KernelConfig and count the choice in Stats. All kernels
// compute exact intersection sizes, so the kernel setting can never
// change the emitted match stream — only the work profile and the
// Kernel* counters. Packed forms are built by the single-writer phases
// (Bundle.add, removeDead, collectCandidates for the probe) and read-only
// during verification, which keeps the fanned ProbePar path lock-free.
package bundle

import (
	"repro/internal/similarity"
	"repro/internal/tokens"
)

// packIf rebuilds dst's packed form from set when the kernel config wants
// one for a set of this length, and records the outcome in ok.
func packIf(kern similarity.KernelConfig, dst *similarity.Packed, ok *bool, set []tokens.Rank) {
	if !kern.ShouldPack(set) {
		*ok = false
		return
	}
	similarity.PackInto(dst, set)
	*ok = true
}

// overlapKernel computes |a∩b| with the configured kernel. ap/bp are the
// cached packed forms of a and b (consulted only when the matching OK
// flag is set). steps is the kernel's own unit of work — merge iterations
// for linear, comparisons for gallop, word merges for bitset — reported
// into the same Stats columns as before, so step counts are only
// comparable within one kernel setting.
//
// parcheck: runs on the verifier pool. Reads the index and the cached
// packed forms; all writes go to st.
//
// hotpath: zero-alloc — one call per verification merge.
func (bx *Index) overlapKernel(st *Stats, a []tokens.Rank, ap *similarity.Packed, apOK bool, b []tokens.Rank, bp *similarity.Packed, bpOK bool) (o, steps int) {
	if !apOK {
		ap = nil
	}
	if !bpOK {
		bp = nil
	}
	switch bx.cfg.Kernel.Choose(len(a), len(b), ap, bp) {
	case similarity.KernelGallop:
		st.KernelGallop++
		return similarity.IntersectSizeGallop(a, b)
	case similarity.KernelBitset:
		st.KernelBitset++
		return similarity.IntersectSizePacked(ap, bp)
	default:
		st.KernelLinear++
		return overlapSteps(a, b)
	}
}

// overlapKernelBounded is overlapKernel with VerifyOverlap's early
// termination contract: ok reports whether required was met, and o is
// exact when ok. The ok decision equals |a∩b| >= required for every
// kernel, so bounded calls are kernel-parity-safe too.
//
// parcheck: runs on the verifier pool. Reads the index and the cached
// packed forms; all writes go to st.
//
// hotpath: zero-alloc — one call per verification merge.
func (bx *Index) overlapKernelBounded(st *Stats, a []tokens.Rank, ap *similarity.Packed, apOK bool, b []tokens.Rank, bp *similarity.Packed, bpOK bool, required int) (o, steps int, ok bool) {
	if !apOK {
		ap = nil
	}
	if !bpOK {
		bp = nil
	}
	switch bx.cfg.Kernel.Choose(len(a), len(b), ap, bp) {
	case similarity.KernelGallop:
		st.KernelGallop++
		return similarity.VerifyOverlapGallop(a, b, required)
	case similarity.KernelBitset:
		st.KernelBitset++
		return similarity.VerifyOverlapPacked(ap, bp, required)
	default:
		st.KernelLinear++
		o, steps, ok = overlapStepsBounded(a, b, required)
		return o, steps, ok
	}
}
