package bundle

import "repro/internal/tokens"

// alloc is the index's slab allocator for the insert path. Members,
// bundles and delta slices are small and allocated once per record, which
// made them the top allocation sites in the end-to-end profile; carving
// them out of chunked slabs turns one heap allocation per object into one
// per chunk. Slabs are owned by the single-writer index goroutine and are
// never freed individually — retired objects keep their chunk alive until
// the whole chunk ages out with the window, which is bounded by design.
type alloc struct {
	members []Member
	bundles []Bundle
	chunk   []tokens.Rank
	used    int
}

const (
	memberChunk = 256
	bundleChunk = 128
	rankChunk   = 8192
)

// member hands out a zeroed *Member from the slab.
func (al *alloc) member() *Member {
	if len(al.members) == 0 {
		al.members = make([]Member, memberChunk)
	}
	m := &al.members[0]
	al.members = al.members[1:]
	return m
}

// bundle hands out a zeroed *Bundle from the slab.
func (al *alloc) bundle() *Bundle {
	if len(al.bundles) == 0 {
		al.bundles = make([]Bundle, bundleChunk)
	}
	b := &al.bundles[0]
	al.bundles = al.bundles[1:]
	return b
}

// grab reserves room for up to n ranks and returns an empty slice with
// exactly that capacity (three-index, so an append past the reservation
// can never clobber a neighbour — it falls back to a fresh allocation
// instead). Callers append at most n elements and then commit the length
// they actually used; the unused remainder of the reservation is
// reclaimed for the next grab.
func (al *alloc) grab(n int) []tokens.Rank {
	if cap(al.chunk)-al.used < n {
		c := rankChunk
		if n > c {
			c = n
		}
		al.chunk = make([]tokens.Rank, c)
		al.used = 0
	}
	return al.chunk[al.used:al.used : al.used+n]
}

// commit advances the chunk cursor past the n ranks the caller kept.
func (al *alloc) commit(n int) { al.used += n }
