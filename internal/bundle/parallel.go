// Parallel probe/verify: a per-index pool of verifier goroutines fans
// verification out across cores — candidate bundles in collect mode,
// root subtrees of the filter-and-verification tree in tree mode — and
// merges the results back into the canonical per-probe emission order
// (ascending partner ID), so a parallel probe emits the exact byte
// sequence the sequential Probe emits — for any pool size and mode.
//
// The determinism argument rests on the phase split collectCandidates
// introduced: collect/expand (single-writer, mutates postings or walks
// the root) → verify (read-only, fanned out) → merge (single-writer,
// canonical order) → insert (single-writer). During the verify phase no
// goroutine writes the index or the tree, so verifiers need no locks and
// no snapshots; each works out of its own VerifyCtx (stats + match arena
// + tree walk), and the WaitGroup barrier plus the job channel sends
// give the happens-before edges that make the whole exchange
// race-detector clean. Matches land in per-context arenas tagged with
// (context, offset, count) per work unit; the merge gathers every range
// into the probe buffer and flushes it canonically sorted — the same
// order the sequential paths produce. The best-insertion pick applies
// the canonical (max similarity, min partner ID) rule, a pure function
// of the match set, so grouping decisions (and therefore index
// evolution) are identical too.
package bundle

import (
	"sync"
	"sync/atomic"

	"repro/internal/record"
)

// fanoutMin is the candidate count below which a pooled probe stays on the
// calling goroutine: waking helpers for a couple of bundles costs more than
// the verification itself. Determinism does not depend on the cutoff — the
// serial path and the fanned path emit identical streams.
const fanoutMin = 4

// claimChunk is how many candidates a verifier claims per atomic cursor
// bump in collect mode. Chunking cuts cursor contention roughly 8× on
// candidate-heavy probes; determinism is free because results are
// indexed by candidate position, not claim order. Tree subtrees are
// claimed singly — they are far coarser units, and chunking them would
// let one helper hoard several heavy subtrees.
const claimChunk = 8

// VerifyCtx is the goroutine-local state of one verifier: private work
// counters (folded into Index.Stats at the barrier via mergeVerify), a
// match arena (gathered at merge), and a tree walk for tree-mode
// descents. Contexts are created once per pool and reused for every
// record, so the steady-state probe path allocates nothing beyond
// amortized arena growth.
type VerifyCtx struct {
	id      int
	stats   Stats
	arena   []Match
	walk    treeWalk
	collect func(Match) // appends to arena; built once to avoid a per-record closure

	// verified counts candidates this context verified over the pool's
	// lifetime. Atomic: scrape goroutines read it mid-run (per-core work
	// distribution in /metrics).
	verified atomic.Uint64
}

// candResult records where one work unit's matches landed: an arena
// range in ctx's VerifyCtx plus the unit's best-insertion hint. The
// merge phase gathers the ranges and flushes them canonically sorted.
type candResult struct {
	ctx    int
	off, n int
	best   Insertion
	found  bool
}

// probeJob is the unit handed to helper goroutines: one record's work
// list — candidate bundles (collect mode) or pruned root subtrees (tree
// mode; exactly one of cands/tree is set). Helpers claim units by
// atomically advancing next (work stealing over a shared cursor, so an
// unlucky split cannot stall the round) and write disjoint entries of
// res. One probe runs at a time per pool, so the pool reuses a single
// job value.
type probeJob struct {
	bx    *Index
	r     *record.Record
	cands []*Bundle
	tree  []*treeNode
	res   []candResult
	next  atomic.Int64
	wg    sync.WaitGroup
}

// Pool is a reusable set of verifier goroutines shared by successive
// probes of one index owner. NewPool(p) starts p-1 helper goroutines; the
// probing goroutine itself is the p-th verifier, so p=1 spawns nothing
// and behaves exactly like the sequential path. A Pool is owned by a
// single probing goroutine (one probe at a time); Close releases the
// helpers. Counter snapshots (Snapshot) are safe from any goroutine.
type Pool struct {
	ctxs []*VerifyCtx // ctxs[0] belongs to the probing goroutine
	jobs chan *probeJob
	wg   sync.WaitGroup
	job  probeJob
	res  []candResult

	closed bool

	roundsSerial   atomic.Uint64 // probes kept on the caller (below fanoutMin)
	roundsParallel atomic.Uint64 // probes fanned out to helpers
	fanned         atomic.Uint64 // candidates verified in fanned rounds
	idleStints     atomic.Uint64 // helper wakeups that found the cursor drained
}

// NewPool returns a verifier pool of size p (clamped to >= 1). Size 1
// means "sequential": no goroutines, no channel, zero overhead.
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{ctxs: make([]*VerifyCtx, p)}
	for i := range pool.ctxs {
		c := &VerifyCtx{id: i}
		c.collect = func(m Match) { c.arena = append(c.arena, m) }
		pool.ctxs[i] = c
	}
	if p > 1 {
		// Buffered to pool size so a round's handoff sends never block.
		pool.jobs = make(chan *probeJob, p-1)
		pool.wg.Add(p - 1)
		for i := 1; i < p; i++ {
			go pool.helper(pool.ctxs[i])
		}
	}
	return pool
}

// Size returns the pool's parallelism (helper goroutines + the caller).
func (p *Pool) Size() int { return len(p.ctxs) }

// Close stops the helper goroutines and waits for them to exit. The pool
// must be idle (no probe in flight). Closing a closed pool is a no-op;
// a closed pool must not be passed to ProbePar again.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
	}
}

// helper is the long-lived loop of one pool goroutine: receive a job,
// steal candidates until the cursor drains, signal the barrier, park on
// the channel again. It exits when Close closes the channel.
func (p *Pool) helper(c *VerifyCtx) {
	defer p.wg.Done()
	for j := range p.jobs {
		p.runStint(j, c)
		j.wg.Done()
	}
}

// runStint verifies work units for one job out of context c until the
// shared cursor is exhausted: candidate bundles claimed claimChunk at a
// time, or tree subtrees claimed singly.
//
// parcheck: runs on the verifier pool. Everything it writes is local to c
// or a disjoint res entry; the index is read-only here.
//
// hotpath: zero-alloc — the claim loop runs once per chunk or subtree;
// match payloads land in the per-context arena, not fresh slices.
func (p *Pool) runStint(j *probeJob, c *VerifyCtx) {
	worked := false
	if j.tree != nil {
		w := &c.walk
		for {
			i := int(j.next.Add(1)) - 1
			if i >= len(j.tree) {
				break
			}
			worked = true
			off := len(c.arena)
			w.best, w.found = Insertion{}, false
			w.descend(j.tree[i], 0, 0, 0, false)
			j.res[i] = candResult{ctx: c.id, off: off, n: len(c.arena) - off, best: w.best, found: w.found}
			c.verified.Add(1)
		}
	} else {
		for {
			base := int(j.next.Add(claimChunk)) - claimChunk
			if base >= len(j.cands) {
				break
			}
			end := base + claimChunk
			if end > len(j.cands) {
				end = len(j.cands)
			}
			worked = true
			for i := base; i < end; i++ {
				off := len(c.arena)
				ins, found := j.bx.probeBundle(j.r, j.cands[i], &c.stats, c.collect)
				j.res[i] = candResult{ctx: c.id, off: off, n: len(c.arena) - off, best: ins, found: found}
				c.verified.Add(1)
			}
		}
	}
	if !worked {
		p.idleStints.Add(1)
	}
}

// ProbePar is Probe with verification fanned out over pool — candidate
// bundles in collect mode, root subtrees in tree mode. It emits the
// byte-identical match stream and returns the identical insertion hint
// for any pool size, including nil (sequential), and for any mode. The
// caller must be the pool's owning goroutine.
func (bx *Index) ProbePar(pool *Pool, r *record.Record, emit func(Match)) (best Insertion, ok bool) {
	if pool == nil || len(pool.ctxs) == 1 {
		return bx.Probe(r, emit)
	}
	if bx.useTree() {
		return pool.probeTreePar(bx, r, emit)
	}
	cands := bx.collectCandidates(r)
	bx.emitBuf = bx.emitBuf[:0]
	if len(cands) < fanoutMin {
		pool.roundsSerial.Add(1)
		for _, b := range cands {
			if m, found := bx.probeBundle(r, b, &bx.stats, bx.emitAppend); found {
				if !ok || betterIns(m, best) {
					best, ok = m, true
				}
			}
		}
	} else {
		best, ok = pool.verify(bx, r, cands)
	}
	bx.emitCanonical(emit)
	bx.finishProbe()
	return best, ok
}

// verify runs one fanned collect-mode round: reset contexts, wake
// helpers, verify from the caller's own context, wait the barrier out,
// then fold stats and gather matches into the probe buffer (the caller
// flushes it canonically).
func (p *Pool) verify(bx *Index, r *record.Record, cands []*Bundle) (best Insertion, ok bool) {
	p.roundsParallel.Add(1)
	p.fanned.Add(uint64(len(cands)))
	res := p.prepRound(len(cands))
	j := &p.job
	j.bx, j.r, j.cands, j.res = bx, r, cands, res
	j.next.Store(0)
	p.runRound(j, len(cands))
	best, ok = p.mergeRound(bx, res, best, false)
	j.bx, j.r, j.cands, j.res = nil, nil, nil, nil
	return best, ok
}

// probeTreePar is the pooled tree probe: the caller expands the root
// (prunes counted in the index stats, exactly as the serial descent
// does), then helpers claim surviving subtrees. Below fanoutMin the
// descent stays on the caller — both branches run the identical
// expand/prune/descend code, so counter totals match the serial path.
func (p *Pool) probeTreePar(bx *Index, r *record.Record, emit func(Match)) (best Insertion, ok bool) {
	bx.stats.TreeProbes++
	packIf(bx.cfg.Kernel, &bx.probeP, &bx.probeOK, r.Tokens)
	w := &bx.tw
	w.prep(bx, r)
	w.st, w.collect = &bx.stats, bx.emitAppend
	bx.emitBuf = bx.emitBuf[:0]
	if w.pa > 0 {
		bx.frontier = w.expandRoot(bx.frontier[:0])
		if len(bx.frontier) < fanoutMin {
			p.roundsSerial.Add(1)
			for _, c := range bx.frontier {
				w.descend(c, 0, 0, 0, false)
			}
			best, ok = w.best, w.found
		} else {
			p.roundsParallel.Add(1)
			p.fanned.Add(uint64(len(bx.frontier)))
			res := p.prepRound(len(bx.frontier))
			for _, c := range p.ctxs {
				c.walk.prep(bx, r)
				c.walk.st, c.walk.collect = &c.stats, c.collect
			}
			j := &p.job
			j.bx, j.r, j.tree, j.res = bx, r, bx.frontier, res
			j.next.Store(0)
			p.runRound(j, len(bx.frontier))
			best, ok = p.mergeRound(bx, res, w.best, w.found)
			j.bx, j.r, j.tree, j.res = nil, nil, nil, nil
		}
	}
	w.release()
	bx.emitCanonical(emit)
	bx.finishProbe()
	return best, ok
}

// prepRound sizes the result table and resets the per-context arenas for
// one fanned round.
func (p *Pool) prepRound(units int) []candResult {
	if cap(p.res) < units {
		p.res = make([]candResult, units)
	}
	for i := range p.ctxs {
		p.ctxs[i].arena = p.ctxs[i].arena[:0]
	}
	return p.res[:units]
}

// runRound wakes enough helpers for units work items, runs the caller's
// own stint, and waits the barrier out.
func (p *Pool) runRound(j *probeJob, units int) {
	helpers := len(p.ctxs) - 1
	if n := units - 1; helpers > n {
		helpers = n
	}
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.jobs <- j
	}
	p.runStint(j, p.ctxs[0])
	j.wg.Wait()
}

// mergeRound folds per-context stats into the index, gathers every
// result range into the probe buffer, releases the context walks, and
// reduces the best-insertion hints under the canonical rule (a pure
// function of the match set, so reduction order cannot matter).
func (p *Pool) mergeRound(bx *Index, res []candResult, best Insertion, ok bool) (Insertion, bool) {
	for _, c := range p.ctxs {
		bx.stats.mergeVerify(&c.stats)
		c.stats = Stats{}
		c.walk.release()
	}
	for i := range res {
		cr := &res[i]
		if cr.n > 0 {
			arena := p.ctxs[cr.ctx].arena
			bx.emitBuf = append(bx.emitBuf, arena[cr.off:cr.off+cr.n]...)
		}
		if cr.found && (!ok || betterIns(cr.best, best)) {
			best, ok = cr.best, true
		}
	}
	return best, ok
}

// PoolStats is a point-in-time snapshot of a pool's work counters.
type PoolStats struct {
	Size           int
	RoundsSerial   uint64   // probes below the fanout cutoff
	RoundsParallel uint64   // probes fanned across the pool
	Fanned         uint64   // candidates verified in fanned rounds
	IdleStints     uint64   // helper wakeups that found no work left
	PerCtx         []uint64 // candidates verified per context (caller first)
}

// CtxVerified reads one context's lifetime verified-candidate counter
// without allocating; scrape callbacks use it per series.
func (p *Pool) CtxVerified(i int) uint64 { return p.ctxs[i].verified.Load() }

// Snapshot reads the pool counters. Safe to call from a scrape goroutine
// while the owner is probing.
func (p *Pool) Snapshot() PoolStats {
	if p == nil {
		return PoolStats{Size: 1}
	}
	s := PoolStats{
		Size:           len(p.ctxs),
		RoundsSerial:   p.roundsSerial.Load(),
		RoundsParallel: p.roundsParallel.Load(),
		Fanned:         p.fanned.Load(),
		IdleStints:     p.idleStints.Load(),
		PerCtx:         make([]uint64, len(p.ctxs)),
	}
	for i, c := range p.ctxs {
		s.PerCtx[i] = c.verified.Load()
	}
	return s
}
