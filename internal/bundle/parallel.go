// Parallel probe/verify: a per-index pool of verifier goroutines fans
// candidate-bundle verification out across cores and merges the results
// back in candidate-discovery order, so a parallel probe emits the exact
// byte sequence the sequential Probe emits — for any pool size.
//
// The determinism argument rests on the phase split collectCandidates
// introduced: collect (single-writer, mutates postings) → verify
// (read-only, fanned out) → merge (single-writer, emits in candidate
// order) → insert (single-writer). During the verify phase no goroutine
// writes the index, so verifiers need no locks and no snapshots; each
// works out of its own VerifyCtx (stats + match arena), and the
// WaitGroup barrier plus the job channel sends give the happens-before
// edges that make the whole exchange race-detector clean. Matches land
// in per-context arenas tagged with (context, offset, count) per
// candidate; the merge walks candidates in discovery order and replays
// each one's arena range, which is the member order probeBundle produced
// — exactly the sequential emission order. The best-insertion pick scans
// the same candidate order with the same strict > comparison, so
// grouping decisions (and therefore index evolution) are identical too.
package bundle

import (
	"sync"
	"sync/atomic"

	"repro/internal/record"
)

// fanoutMin is the candidate count below which a pooled probe stays on the
// calling goroutine: waking helpers for a couple of bundles costs more than
// the verification itself. Determinism does not depend on the cutoff — the
// serial path and the fanned path emit identical streams.
const fanoutMin = 4

// VerifyCtx is the goroutine-local state of one verifier: private work
// counters (folded into Index.Stats at the barrier via mergeVerify) and a
// match arena (replayed at merge). Contexts are created once per pool and
// reused for every record, so the steady-state probe path allocates
// nothing beyond amortized arena growth.
type VerifyCtx struct {
	id      int
	stats   Stats
	arena   []Match
	collect func(Match) // appends to arena; built once to avoid a per-record closure

	// verified counts candidates this context verified over the pool's
	// lifetime. Atomic: scrape goroutines read it mid-run (per-core work
	// distribution in /metrics).
	verified atomic.Uint64
}

// candResult records where one candidate's matches landed: an arena range
// in ctx's VerifyCtx plus the candidate's best-insertion hint. The merge
// phase turns the table of these back into the sequential emission order.
type candResult struct {
	ctx    int
	off, n int
	best   Insertion
	found  bool
}

// probeJob is the unit handed to helper goroutines: one record's candidate
// list. Helpers claim candidates by atomically incrementing next (work
// stealing over a shared cursor, so an unlucky split cannot stall the
// round) and write disjoint entries of res. One probe runs at a time per
// pool, so the pool reuses a single job value.
type probeJob struct {
	bx    *Index
	r     *record.Record
	cands []*Bundle
	res   []candResult
	next  atomic.Int64
	wg    sync.WaitGroup
}

// Pool is a reusable set of verifier goroutines shared by successive
// probes of one index owner. NewPool(p) starts p-1 helper goroutines; the
// probing goroutine itself is the p-th verifier, so p=1 spawns nothing
// and behaves exactly like the sequential path. A Pool is owned by a
// single probing goroutine (one probe at a time); Close releases the
// helpers. Counter snapshots (Snapshot) are safe from any goroutine.
type Pool struct {
	ctxs []*VerifyCtx // ctxs[0] belongs to the probing goroutine
	jobs chan *probeJob
	wg   sync.WaitGroup
	job  probeJob
	res  []candResult

	closed bool

	roundsSerial   atomic.Uint64 // probes kept on the caller (below fanoutMin)
	roundsParallel atomic.Uint64 // probes fanned out to helpers
	fanned         atomic.Uint64 // candidates verified in fanned rounds
	idleStints     atomic.Uint64 // helper wakeups that found the cursor drained
}

// NewPool returns a verifier pool of size p (clamped to >= 1). Size 1
// means "sequential": no goroutines, no channel, zero overhead.
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	pool := &Pool{ctxs: make([]*VerifyCtx, p)}
	for i := range pool.ctxs {
		c := &VerifyCtx{id: i}
		c.collect = func(m Match) { c.arena = append(c.arena, m) }
		pool.ctxs[i] = c
	}
	if p > 1 {
		// Buffered to pool size so a round's handoff sends never block.
		pool.jobs = make(chan *probeJob, p-1)
		pool.wg.Add(p - 1)
		for i := 1; i < p; i++ {
			go pool.helper(pool.ctxs[i])
		}
	}
	return pool
}

// Size returns the pool's parallelism (helper goroutines + the caller).
func (p *Pool) Size() int { return len(p.ctxs) }

// Close stops the helper goroutines and waits for them to exit. The pool
// must be idle (no probe in flight). Closing a closed pool is a no-op;
// a closed pool must not be passed to ProbePar again.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
	}
}

// helper is the long-lived loop of one pool goroutine: receive a job,
// steal candidates until the cursor drains, signal the barrier, park on
// the channel again. It exits when Close closes the channel.
func (p *Pool) helper(c *VerifyCtx) {
	defer p.wg.Done()
	for j := range p.jobs {
		p.runStint(j, c)
		j.wg.Done()
	}
}

// runStint verifies candidates for one job out of context c until the
// shared cursor is exhausted.
//
// parcheck: runs on the verifier pool. Everything it writes is local to c
// or a disjoint res entry; the index is read-only here.
//
// hotpath: zero-alloc — the claim loop runs once per candidate bundle;
// match payloads land in the per-context arena, not fresh slices.
func (p *Pool) runStint(j *probeJob, c *VerifyCtx) {
	worked := false
	for {
		i := int(j.next.Add(1)) - 1
		if i >= len(j.cands) {
			break
		}
		worked = true
		off := len(c.arena)
		ins, found := j.bx.probeBundle(j.r, j.cands[i], &c.stats, c.collect)
		j.res[i] = candResult{ctx: c.id, off: off, n: len(c.arena) - off, best: ins, found: found}
		c.verified.Add(1)
	}
	if !worked {
		p.idleStints.Add(1)
	}
}

// ProbePar is Probe with candidate verification fanned out over pool. It
// emits the byte-identical match stream and returns the identical
// insertion hint for any pool size, including nil (sequential). The
// caller must be the pool's owning goroutine.
func (bx *Index) ProbePar(pool *Pool, r *record.Record, emit func(Match)) (best Insertion, ok bool) {
	if pool == nil || len(pool.ctxs) == 1 {
		return bx.Probe(r, emit)
	}
	cands := bx.collectCandidates(r)
	if len(cands) < fanoutMin {
		pool.roundsSerial.Add(1)
		for _, b := range cands {
			if m, found := bx.probeBundle(r, b, &bx.stats, emit); found {
				if !ok || m.Sim > best.Sim {
					best, ok = m, true
				}
			}
		}
		bx.publish()
		return best, ok
	}
	best, ok = pool.verify(bx, r, cands, emit)
	bx.publish()
	return best, ok
}

// verify runs one fanned round: reset contexts, wake helpers, verify from
// the caller's own context, wait the barrier out, then fold stats and
// replay matches in candidate order.
func (p *Pool) verify(bx *Index, r *record.Record, cands []*Bundle, emit func(Match)) (best Insertion, ok bool) {
	p.roundsParallel.Add(1)
	p.fanned.Add(uint64(len(cands)))
	if cap(p.res) < len(cands) {
		p.res = make([]candResult, len(cands))
	}
	res := p.res[:len(cands)]
	for i := range p.ctxs {
		p.ctxs[i].arena = p.ctxs[i].arena[:0]
	}
	j := &p.job
	j.bx, j.r, j.cands, j.res = bx, r, cands, res
	j.next.Store(0)
	helpers := len(p.ctxs) - 1
	if n := len(cands) - 1; helpers > n {
		helpers = n
	}
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.jobs <- j
	}
	p.runStint(j, p.ctxs[0])
	j.wg.Wait()

	for _, c := range p.ctxs {
		bx.stats.mergeVerify(&c.stats)
		c.stats = Stats{}
	}
	for i := range res {
		cr := &res[i]
		if cr.n > 0 {
			arena := p.ctxs[cr.ctx].arena
			for k := cr.off; k < cr.off+cr.n; k++ {
				emit(arena[k])
			}
		}
		if cr.found && (!ok || cr.best.Sim > best.Sim) {
			best, ok = cr.best, true
		}
	}
	j.bx, j.r, j.cands, j.res = nil, nil, nil, nil
	return best, ok
}

// PoolStats is a point-in-time snapshot of a pool's work counters.
type PoolStats struct {
	Size           int
	RoundsSerial   uint64   // probes below the fanout cutoff
	RoundsParallel uint64   // probes fanned across the pool
	Fanned         uint64   // candidates verified in fanned rounds
	IdleStints     uint64   // helper wakeups that found no work left
	PerCtx         []uint64 // candidates verified per context (caller first)
}

// CtxVerified reads one context's lifetime verified-candidate counter
// without allocating; scrape callbacks use it per series.
func (p *Pool) CtxVerified(i int) uint64 { return p.ctxs[i].verified.Load() }

// Snapshot reads the pool counters. Safe to call from a scrape goroutine
// while the owner is probing.
func (p *Pool) Snapshot() PoolStats {
	if p == nil {
		return PoolStats{Size: 1}
	}
	s := PoolStats{
		Size:           len(p.ctxs),
		RoundsSerial:   p.roundsSerial.Load(),
		RoundsParallel: p.roundsParallel.Load(),
		Fanned:         p.fanned.Load(),
		IdleStints:     p.idleStints.Load(),
		PerCtx:         make([]uint64, len(p.ctxs)),
	}
	for i, c := range p.ctxs {
		s.PerCtx[i] = c.verified.Load()
	}
	return s
}
