package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bundle"
	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/topology"
	"repro/internal/window"
	"repro/internal/workload"
)

// Scale sizes an experiment run. The defaults (via DefaultScale) regenerate
// publication-shaped results in seconds on a laptop; tests shrink them.
type Scale struct {
	// Records per run.
	Records int
	// Workers for distributed runs (sweeps override).
	Workers int
	// Seed for workload generation.
	Seed int64
	// Batch is the transport batch size for distributed runs: 0 uses the
	// engine default (stream.DefaultBatchSize), 1 disables batching.
	Batch int
	// Parallel sizes each worker's verifier pool for distributed runs
	// (bundle algorithm): 0 or 1 keeps workers single-threaded. Results
	// are identical at any value; only throughput changes.
	Parallel int
	// Kernel selects the verification intersection kernel for bundle runs.
	// Every kernel computes exact overlaps, so results are identical at any
	// setting; only the work profile changes.
	Kernel similarity.KernelConfig
	// VerifyMode selects the verification organization for bundle runs
	// (collect / tree / auto). Every mode emits byte-identical results;
	// only the candidate workload changes. E23 sweeps it explicitly.
	VerifyMode bundle.VerifyMode
	// Registry, when set, receives live metrics from every topology run an
	// experiment performs (ssjoinbench -http / -json).
	Registry *obs.Registry
	// Tracer, when set and enabled, samples tuple lineages during runs
	// (ssjoinbench -trace N).
	Tracer *obs.Tracer
}

// DefaultScale is the CLI default.
func DefaultScale() Scale { return Scale{Records: 20000, Workers: 8, Seed: 42} }

// ParallelOrOne reports the effective verifier-pool size (0 means 1).
func (sc Scale) ParallelOrOne() int {
	if sc.Parallel < 1 {
		return 1
	}
	return sc.Parallel
}

// Experiment is a runnable paper artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) *Table
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Dataset statistics (paper Table 1)", T1},
		{"E1", "Throughput vs threshold per framework", E1},
		{"E2", "Scalability: throughput vs workers", E2},
		{"E3", "Communication cost vs threshold", E3},
		{"E4", "Replication factor and index size", E4},
		{"E5", "Partitioner load imbalance", E5},
		{"E6", "Throughput by partitioner", E6},
		{"E7", "Bundle join vs record-at-a-time", E7},
		{"E8", "Batch vs one-by-one verification", E8},
		{"E9", "Bundle grouping-threshold sweep", E9},
		{"E9b", "Bundle size-cap sweep", E9b},
		{"E10", "Processing latency per framework", E10},
		{"E11", "Window size sweep", E11},
		{"E12", "Similarity-function generality", E12},
		{"E13", "Adaptive repartitioning under drift (extension)", E13},
		{"E14", "In-process engine vs TCP worker fleet (extension)", E14},
		{"E15", "Streaming vs offline join (extension)", E15},
		{"E16", "Throughput vs simulated network cost (extension)", E16},
		{"E17", "Exact prefix join vs MinHash-LSH (extension)", E17},
		{"E18", "Dispatcher parallelism with reorder buffers (extension)", E18},
		{"E19", "Token-ordering refresh under vocabulary drift (extension)", E19},
		{"E20", "Intra-worker parallel verification scaling (extension)", E20},
		{"E21", "Verification kernel sweep (extension)", E21},
		{"E22", "Distributed tracing overhead (extension)", E22},
		{"E23", "Candidate-free verification: collect vs tree vs auto (extension)", E23},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// jaccard builds the default filter parameters.
func jaccard(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

// histogramOf builds a length histogram from the records themselves (the
// harness equivalent of the bootstrap sample).
func histogramOf(recs []*record.Record) *partition.Histogram {
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	return &h
}

// strategyFor materializes a named strategy for the given stream.
func strategyFor(name string, p filter.Params, recs []*record.Record, k int) dispatch.Strategy {
	switch name {
	case "length":
		h := histogramOf(recs)
		w := partition.CostModel{Params: p}.Weights(h)
		return dispatch.NewLengthBased(p, partition.LoadAware(w, k))
	case "prefix":
		return dispatch.PrefixBased{Params: p}
	case "broadcast":
		return dispatch.BroadcastBased{}
	default:
		panic("experiments: unknown strategy " + name)
	}
}

var frameworkNames = []string{"length", "prefix", "broadcast"}

// runTopology executes one distributed join and returns its result. The
// Scale threads run-wide knobs (currently the transport batch size) into
// the topology config without widening every experiment's parameter list.
func runTopology(sc Scale, recs []*record.Record, strat dispatch.Strategy, p filter.Params, k int, alg local.Algorithm, win window.Policy) *topology.Result {
	res, err := topology.Run(recs, topology.Config{
		Workers:     k,
		Strategy:    strat,
		Algorithm:   alg,
		Params:      p,
		Window:      win,
		BatchSize:   sc.Batch,
		Parallelism: sc.Parallel,
		Bundle:      bundle.Config{Kernel: sc.Kernel, VerifyMode: sc.VerifyMode},
		Registry:    sc.Registry,
		Tracer:      sc.Tracer,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: topology run failed: %v", err))
	}
	return res
}

// genProfile materializes records for a profile at scale.
func genProfile(p workload.Profile, n int) []*record.Record {
	return workload.NewGenerator(p).Generate(n)
}

// sumVerify sums per-worker verification work for load analysis.
func workerLoads(res *topology.Result) []float64 {
	loads := make([]float64, len(res.WorkerCosts))
	for i, c := range res.WorkerCosts {
		loads[i] = float64(c.VerifySteps + c.Scanned)
	}
	return loads
}

// sortedCopy returns a sorted copy of xs (descending) for reporting.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
