// Package experiments regenerates every table and figure of the paper's
// evaluation as text tables: workload generation, parameter sweeps,
// baselines and the measurement harness live here, with one entry point per
// experiment. EXPERIMENTS.md documents the mapping from experiment ID to
// paper artefact and the expected shape of each result.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated paper artefact: a titled grid of cells plus a
// free-form note recording what shape the paper reports.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Cell returns the cell at (row, col) — test helper.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// CSV renders the table as RFC-4180-ish CSV (header row first, cells with
// commas or quotes quoted) for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
