package experiments

import (
	"fmt"

	"repro/internal/local"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E18 sweeps dispatcher parallelism: a single dispatcher preserves arrival
// order for free but eventually becomes the routing bottleneck; parallel
// dispatchers trade a per-worker reorder buffer (watermark, bounded slack)
// for routing bandwidth. Results stay exact — LateDrops must be zero.
func E18(sc Scale) *Table {
	t := &Table{
		ID:      "E18",
		Title:   fmt.Sprintf("Dispatcher parallelism, AOL-like, τ=0.8, k=%d, length-based", sc.Workers),
		Columns: []string{"dispatchers", "throughput rec/s", "results", "late drops"},
		Notes:   "extension: reorder buffers make parallel routing safe (identical results, zero late drops); at this scale routing is not the bottleneck so extra dispatchers only pay the reorder cost — the feature matters when per-record routing work grows",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	strat := strategyFor("length", p, recs, sc.Workers)
	for _, d := range []int{1, 2, 4} {
		res, err := topology.Run(recs, topology.Config{
			Workers:     sc.Workers,
			Dispatchers: d,
			Strategy:    strat,
			Algorithm:   local.Bundled,
			Params:      p,
			BatchSize:   sc.Batch,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: E18: %v", err))
		}
		t.AddRow(d, res.Throughput().PerSecond(), res.Results, res.LateDrops)
	}
	return t
}
