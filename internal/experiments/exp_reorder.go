package experiments

import (
	"fmt"
	"math/rand"
	"time"

	ssjoin "repro"
)

// E19 measures ordering refresh under vocabulary drift: the global token
// ordering is frozen from a bootstrap sample, so a text stream whose hot
// vocabulary appears later keeps frequent tokens at "rare" ranks — they
// sit in prefixes and drag giant posting lists into every probe.
// RefreshOrdering rebuilds the ordering from streamed frequencies and
// re-encodes the window.
func E19(sc Scale) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Token-ordering refresh under vocabulary drift (text stream, τ=0.8)",
		Columns: []string{"policy", "candidates", "verified", "results", "throughput rec/s"},
		Notes:   "extension: results must match exactly; refresh restores prefix-filter pruning after drift",
	}
	n := sc.Records
	if n > 12000 {
		n = 12000 // the frozen-ordering baseline is quadratic; keep runs short
	}
	sample := []string{"bootstrap vocabulary entirely different from the stream"}
	makeTexts := func() []string {
		rng := rand.New(rand.NewSource(sc.Seed))
		texts := make([]string, n)
		for i := range texts {
			// Two stopwords in every record plus distinctive tail tokens;
			// ~20% near-duplicates.
			if i > 0 && rng.Float64() < 0.2 {
				texts[i] = texts[rng.Intn(i)]
				continue
			}
			texts[i] = fmt.Sprintf("the of item%d field%d value%d",
				i, rng.Intn(2000), rng.Intn(2000))
		}
		return texts
	}
	run := func(refreshEvery int) (ssjoin.Stats, float64) {
		ts, err := ssjoin.NewTextStream(ssjoin.Config{Threshold: 0.8, Algorithm: ssjoin.Prefix}, ssjoin.Words, sample)
		if err != nil {
			panic(err)
		}
		texts := makeTexts()
		start := time.Now()
		for i, text := range texts {
			if refreshEvery > 0 && i > 0 && i%refreshEvery == 0 {
				ts.RefreshOrdering()
			}
			ts.Add(text)
		}
		return ts.Stats(), float64(len(texts)) / time.Since(start).Seconds()
	}
	static, rate := run(0)
	t.AddRow("frozen ordering", static.Candidates, static.Verified, static.Results, rate)
	refreshed, rate2 := run(n / 4)
	t.AddRow(fmt.Sprintf("refresh every %d", n/4), refreshed.Candidates, refreshed.Verified, refreshed.Results, rate2)
	return t
}
