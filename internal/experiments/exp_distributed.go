package experiments

import (
	"fmt"
	"time"

	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/similarity"
	"repro/internal/window"
	"repro/internal/workload"
)

var thresholds = []float64{0.6, 0.7, 0.8, 0.9}

// T1 reports the statistics of every workload profile — the stand-in for
// the paper's dataset table.
func T1(sc Scale) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Workload profiles (synthetic stand-ins for the paper's corpora)",
		Columns: []string{"profile", "records", "vocab", "len-mean", "len-p50", "len-max", "dup-rate", "zipf-s"},
		Notes:   "lengths from a generated sample; dup-rate and zipf-s are generator parameters",
	}
	for _, p := range workload.Profiles(sc.Seed) {
		recs := genProfile(p, sc.Records)
		var sum, max int
		lens := make([]int, len(recs))
		for i, r := range recs {
			lens[i] = r.Len()
			sum += r.Len()
			if r.Len() > max {
				max = r.Len()
			}
		}
		p50 := quickMedian(lens)
		t.AddRow(p.Name, len(recs), p.Vocab,
			float64(sum)/float64(len(recs)), p50, max, p.DupRate, p.ZipfS)
	}
	return t
}

func quickMedian(xs []int) int {
	cp := append([]int(nil), xs...)
	// insertion-free selection is overkill; simple sort
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp) == 0 {
		return 0
	}
	return cp[len(cp)/2]
}

// E1 regenerates the headline figure: throughput of each distribution
// framework as the similarity threshold varies.
func E1(sc Scale) *Table {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("Throughput (rec/s) vs τ, AOL-like, k=%d, bundle joiner", sc.Workers),
		Columns: []string{"tau", "length", "prefix", "broadcast", "length/broadcast", "length/prefix"},
		Notes:   "paper shape: length-based wins at every τ, up to ~10x over baselines; gap narrows as τ drops",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	for _, tau := range thresholds {
		p := jaccard(tau)
		rates := map[string]float64{}
		for _, name := range frameworkNames {
			res := runTopology(sc, recs, strategyFor(name, p, recs, sc.Workers), p, sc.Workers, local.Bundled, nil)
			rates[name] = res.Throughput().PerSecond()
		}
		t.AddRow(tau, rates["length"], rates["prefix"], rates["broadcast"],
			ratio(rates["length"], rates["broadcast"]), ratio(rates["length"], rates["prefix"]))
	}
	return t
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// E2 regenerates the scalability figure: throughput as workers increase.
func E2(sc Scale) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Throughput (rec/s) vs workers, AOL-like, τ=0.8",
		Columns: []string{"workers", "length", "prefix", "broadcast"},
		Notes:   "paper shape: length-based scales near-linearly; broadcast flattens (probe fan-out grows with k)",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, k := range workerSweep(sc.Workers) {
		row := []interface{}{k}
		for _, name := range frameworkNames {
			res := runTopology(sc, recs, strategyFor(name, p, recs, k), p, k, local.Bundled, nil)
			row = append(row, res.Throughput().PerSecond())
		}
		t.AddRow(row...)
	}
	return t
}

func workerSweep(max int) []int {
	sweep := []int{1, 2, 4, 8, 16}
	var out []int
	for _, k := range sweep {
		if k <= max {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}

// E3 regenerates the communication-cost figure: dispatcher→worker tuples
// and bytes per record for each framework across thresholds.
func E3(sc Scale) *Table {
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("Communication per record vs τ, AOL-like, k=%d", sc.Workers),
		Columns: []string{"tau", "length tup/rec", "prefix tup/rec", "bcast tup/rec", "length B/rec", "prefix B/rec", "bcast B/rec"},
		Notes:   "paper shape: length-based ships the fewest tuples; broadcast ships exactly k per record",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	n := float64(len(recs))
	for _, tau := range thresholds {
		p := jaccard(tau)
		tup := map[string]float64{}
		byt := map[string]float64{}
		for _, name := range frameworkNames {
			res := runTopology(sc, recs, strategyFor(name, p, recs, sc.Workers), p, sc.Workers, local.Prefix, nil)
			tup[name] = float64(res.CommTuples) / n
			byt[name] = float64(res.CommBytes) / n
		}
		t.AddRow(tau, tup["length"], tup["prefix"], tup["broadcast"],
			byt["length"], byt["prefix"], byt["broadcast"])
	}
	return t
}

// E4 regenerates the replication/index-size figure.
func E4(sc Scale) *Table {
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Index replication and footprint, τ=0.8, k=%d", sc.Workers),
		Columns: []string{"profile", "framework", "stored copies/rec", "postings"},
		Notes:   "paper shape: length-based stores each record exactly once; prefix-based replicates by prefix fan-out",
	}
	p := jaccard(0.8)
	for _, prof := range []workload.Profile{workload.AOLLike(sc.Seed), workload.TweetLike(sc.Seed)} {
		recs := genProfile(prof, sc.Records)
		for _, name := range frameworkNames {
			res := runTopology(sc, recs, strategyFor(name, p, recs, sc.Workers), p, sc.Workers, local.Prefix, nil)
			var postings uint64
			for _, c := range res.WorkerCosts {
				postings += c.Postings
			}
			t.AddRow(prof.Name, name,
				float64(res.StoredCopies)/float64(len(recs)), postings)
		}
	}
	return t
}

// E10 regenerates the latency figure.
func E10(sc Scale) *Table {
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("Per-record processing latency, AOL-like, τ=0.8, k=%d", sc.Workers),
		Columns: []string{"framework", "mean", "p50", "p99", "max"},
		Notes:   "paper shape: length-based has the lowest latency (no replicated work on the critical path)",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, name := range frameworkNames {
		res := runTopology(sc, recs, strategyFor(name, p, recs, sc.Workers), p, sc.Workers, local.Bundled, nil)
		l := &res.Latency
		t.AddRow(name,
			l.Mean().Round(time.Microsecond).String(),
			l.Quantile(0.5).Round(time.Microsecond).String(),
			l.Quantile(0.99).Round(time.Microsecond).String(),
			l.Max().Round(time.Microsecond).String())
	}
	return t
}

// E11 regenerates the window-size sweep.
func E11(sc Scale) *Table {
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Window size sweep, AOL-like, τ=0.8, k=%d, length-based", sc.Workers),
		Columns: []string{"window", "throughput rec/s", "results", "postings live"},
		Notes:   "larger windows keep more partners joinable: more results, larger index, lower throughput",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	wins := []window.Policy{
		window.Count{N: int64(sc.Records / 20)},
		window.Count{N: int64(sc.Records / 4)},
		window.Count{N: int64(sc.Records)},
		window.Unbounded{},
	}
	for _, win := range wins {
		strat := strategyFor("length", p, recs, sc.Workers)
		res := runTopology(sc, recs, strat, p, sc.Workers, local.Bundled, win)
		var postings uint64
		for _, c := range res.WorkerCosts {
			postings += c.Postings
		}
		t.AddRow(win.String(), res.Throughput().PerSecond(), res.Results, postings)
	}
	return t
}

// E5 regenerates the partitioner-imbalance figure: estimated and realized
// load imbalance for the three length partitioners.
func E5(sc Scale) *Table {
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Length-partitioner imbalance (max/mean load), τ=0.8, k=%d", sc.Workers),
		Columns: []string{"profile", "partitioner", "est. imbalance", "realized imbalance"},
		Notes:   "paper shape: load-aware ≈ 1; even-length and even-frequency degrade on skewed lengths",
	}
	p := jaccard(0.8)
	for _, prof := range []workload.Profile{workload.TweetLike(sc.Seed), workload.EnronLike(sc.Seed)} {
		recs := genProfile(prof, sc.Records)
		h := histogramOf(recs)
		weights := partition.CostModel{Params: p}.Weights(h)
		parts := map[string]partition.Partition{
			"even-length":    partition.EvenLength(h.MaxLen(), sc.Workers),
			"even-frequency": partition.EvenFrequency(h, sc.Workers),
			"load-aware":     partition.LoadAware(weights, sc.Workers),
		}
		for _, name := range []string{"even-length", "even-frequency", "load-aware"} {
			part := parts[name]
			est := partition.Imbalance(part, weights)
			strat := lengthWith(p, part)
			res := runTopology(sc, recs, strat, p, sc.Workers, local.Prefix, nil)
			loads := make([]float64, len(res.WorkerCosts))
			for i, c := range res.WorkerCosts {
				loads[i] = float64(c.VerifySteps)
			}
			realized := metrics.SummarizeLoads(loads).Imbalance
			t.AddRow(prof.Name, name, est, realized)
		}
	}
	return t
}

// E6 regenerates the partitioner throughput figure.
func E6(sc Scale) *Table {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Throughput by length partitioner, ENRON-like, τ=0.8, k=%d", sc.Workers),
		Columns: []string{"partitioner", "throughput rec/s", "imbalance"},
		Notes:   "paper shape: load-aware highest throughput because the slowest worker bounds the pipeline",
	}
	recs := genProfile(workload.EnronLike(sc.Seed), sc.Records/2)
	p := jaccard(0.8)
	h := histogramOf(recs)
	weights := partition.CostModel{Params: p}.Weights(h)
	parts := []struct {
		name string
		part partition.Partition
	}{
		{"even-length", partition.EvenLength(h.MaxLen(), sc.Workers)},
		{"even-frequency", partition.EvenFrequency(h, sc.Workers)},
		{"load-aware", partition.LoadAware(weights, sc.Workers)},
	}
	for _, pp := range parts {
		res := runTopology(sc, recs, lengthWith(p, pp.part), p, sc.Workers, local.Bundled, nil)
		t.AddRow(pp.name, res.Throughput().PerSecond(),
			metrics.SummarizeLoads(workerLoads(res)).Imbalance)
	}
	return t
}

// lengthWith builds a length-based strategy over an explicit partition.
func lengthWith(p filter.Params, part partition.Partition) dispatch.LengthBased {
	return dispatch.NewLengthBased(p, part)
}

// E12 regenerates the similarity-function generality figure: the framework
// must behave consistently for Jaccard, Cosine and Dice.
func E12(sc Scale) *Table {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Similarity-function generality, AOL-like, τ=0.8, k=%d, length-based", sc.Workers),
		Columns: []string{"function", "results", "throughput rec/s", "comm tup/rec"},
		Notes:   "result counts differ by function (different semantics); throughput stays in the same band",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	for _, f := range []similarity.Func{similarity.Jaccard, similarity.Cosine, similarity.Dice} {
		p := filter.Params{Func: f, Threshold: 0.8}
		strat := strategyFor("length", p, recs, sc.Workers)
		res := runTopology(sc, recs, strat, p, sc.Workers, local.Bundled, nil)
		t.AddRow(f.String(), res.Results, res.Throughput().PerSecond(),
			float64(res.CommTuples)/float64(len(recs)))
	}
	return t
}

// E20 is the intra-worker core-scaling sweep: ONE worker, verifier pool
// size P swept over {1,2,4,8}. A single worker makes P map one-to-one
// onto cores (k workers would each demand P cores), and the Enron-like
// profile (long records, τ=0.7) makes verification — the stage the pool
// fans out — dominate the per-record cost, so added cores translate into
// throughput instead of idling behind collection. The parallel probe
// merges results in deterministic order, so the result count is identical
// at every P — the table doubles as a parity check. Speedup is throughput
// relative to P=1 and needs GOMAXPROCS >= P to materialize; on a
// single-core box every P collapses to sequential throughput minus pool
// overhead.
func E20(sc Scale) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "Intra-worker parallel verify: throughput vs pool size (extension)",
		Columns: []string{"parallel", "rec/s", "results", "speedup"},
		Notes:   "bundle algorithm, Enron-like (verification-bound), τ=0.7, one worker so pool size maps 1:1 onto cores; results identical at every P (deterministic merge); speedup requires GOMAXPROCS >= P",
	}
	recs := genProfile(workload.EnronLike(sc.Seed), sc.Records)
	p := jaccard(0.7)
	strat := strategyFor("length", p, recs, 1)
	var base float64
	for _, par := range []int{1, 2, 4, 8} {
		scp := sc
		scp.Parallel = par
		res := runTopology(scp, recs, strat, p, 1, local.Bundled, nil)
		thr := res.Throughput().PerSecond()
		if base == 0 {
			base = thr
		}
		t.AddRow(par, thr, res.Results, thr/base)
	}
	return t
}
