package experiments

import (
	"fmt"
	"time"

	"repro/internal/local"
	"repro/internal/minhash"
	"repro/internal/record"
	"repro/internal/workload"
)

// E17 contrasts the exact prefix-filter join with MinHash-LSH, the classic
// approximate alternative: LSH trades recall (and sometimes speed — short
// records make signatures expensive relative to merges) for independence
// from token orderings. The exact join always has recall 1.
func E17(sc Scale) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Exact prefix join vs MinHash-LSH, AOL-like, τ=0.8",
		Columns: []string{"joiner", "results", "recall", "candidates", "throughput rec/s"},
		Notes:   "extension: LSH verified mode has perfect precision; recall depends on banding (b×r)",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)

	truth := make(map[record.Pair]bool)
	{
		j := local.New(local.Bundled, local.Options{Params: p})
		start := time.Now()
		for _, r := range recs {
			r := r
			j.Step(r, true, func(m local.Match) {
				truth[record.NewPair(r.ID, m.Rec.ID, 0)] = true
			})
		}
		elapsed := time.Since(start)
		t.AddRow("exact/bundle", len(truth), 1.0, j.Cost().Candidates,
			float64(len(recs))/elapsed.Seconds())
	}

	for _, cfg := range []struct {
		name        string
		bands, rows int
	}{
		{"lsh 32x2 (aggressive)", 32, 2},
		{"lsh 16x4 (balanced)", 16, 4},
		{"lsh 8x8 (conservative)", 8, 8},
	} {
		j, err := minhash.New(minhash.Config{
			Threshold: 0.8,
			Params:    minhash.Params{Bands: cfg.bands, Rows: cfg.rows, Seed: uint64(sc.Seed)},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: E17: %v", err))
		}
		found := make(map[record.Pair]bool)
		start := time.Now()
		for _, r := range recs {
			r := r
			j.Add(r, func(m minhash.Match) {
				found[record.NewPair(r.ID, m.Rec.ID, 0)] = true
			})
		}
		elapsed := time.Since(start)
		hit := 0
		for pr := range truth {
			if found[pr] {
				hit++
			}
		}
		recall := 1.0
		if len(truth) > 0 {
			recall = float64(hit) / float64(len(truth))
		}
		t.AddRow(cfg.name, len(found), recall, j.Stats().Candidates,
			float64(len(recs))/elapsed.Seconds())
	}
	return t
}
