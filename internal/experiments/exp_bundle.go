package experiments

import (
	"fmt"
	"time"

	"repro/internal/bundle"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/workload"
)

// runLocal drives one local joiner over the stream and measures its work
// and wall time.
func runLocal(recs []*record.Record, j local.Joiner) (local.Cost, time.Duration, uint64) {
	var results uint64
	start := time.Now()
	for _, r := range recs {
		j.Step(r, true, func(local.Match) { results++ })
	}
	return j.Cost(), time.Since(start), results
}

// E7 regenerates the bundle-join figure: filtering and verification work of
// the bundle joiner against the record-at-a-time prefix joiner (and the
// naive reference) on a duplicate-heavy stream.
func E7(sc Scale) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Bundle join vs record-at-a-time, AOL-like (short, duplicate-heavy), τ=0.8",
		Columns: []string{"algorithm", "candidates", "verify-steps", "results", "throughput rec/s", "postings"},
		Notes:   "paper shape: bundling reduces filtering cost (fewer candidates+postings) and verification steps at equal results",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, alg := range []local.Algorithm{local.Naive, local.Prefix, local.Bundled} {
		j := local.New(alg, local.Options{Params: p})
		cost, elapsed, results := runLocal(recs, j)
		t.AddRow(alg.String(), cost.Candidates, cost.VerifySteps, results,
			float64(len(recs))/elapsed.Seconds(), cost.Postings)
	}
	return t
}

// E8 regenerates the batch-verification ablation: identical bundles, with
// and without token-difference sharing.
func E8(sc Scale) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Batch verification vs one-by-one, AOL-like, τ=0.8, bundle joiner",
		Columns: []string{"verification", "verify-steps", "results", "throughput rec/s", "steps saved"},
		Notes:   "paper shape: sharing the core merge across a bundle's members cuts verification cost; results identical",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	type outcome struct {
		steps, results uint64
		rate           float64
	}
	run := func(oneByOne bool) outcome {
		j := local.New(local.Bundled, local.Options{
			Params: p,
			Bundle: bundle.Config{OneByOneVerify: oneByOne},
		})
		cost, elapsed, results := runLocal(recs, j)
		return outcome{cost.VerifySteps, results, float64(len(recs)) / elapsed.Seconds()}
	}
	single := run(true)
	batch := run(false)
	saved := 0.0
	if single.steps > 0 {
		saved = 1 - float64(batch.steps)/float64(single.steps)
	}
	t.AddRow("one-by-one", single.steps, single.results, single.rate, "—")
	t.AddRow("batch (core+delta)", batch.steps, batch.results, batch.rate,
		fmt.Sprintf("%.1f%%", 100*saved))
	return t
}

// E9 regenerates the grouping-threshold sweep: how aggressively records are
// bundled trades filtering savings against core maintenance.
func E9(sc Scale) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Bundle grouping threshold λ sweep, AOL-like, τ=0.8",
		Columns: []string{"lambda", "bundles", "appends", "max-bundle", "postings", "verify-steps", "throughput rec/s"},
		Notes:   "λ=τ groups most; λ>1 disables grouping (degenerates to record-at-a-time bundles of one)",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, lambda := range []float64{0.8, 0.85, 0.9, 0.95, 1.01} {
		j := local.New(local.Bundled, local.Options{
			Params: p,
			Bundle: bundle.Config{GroupThreshold: lambda},
		})
		cost, elapsed, _ := runLocal(recs, j)
		bj := j.(interface{ BundleStats() bundle.Stats })
		st := bj.BundleStats()
		t.AddRow(lambda, st.Bundles, st.Appends, st.MaxBundleSize, cost.Postings,
			cost.VerifySteps, float64(len(recs))/elapsed.Seconds())
	}
	return t
}

// E9b sweeps the bundle-size cap at λ=τ — the second bundling knob the
// design calls out: small caps limit core maintenance but fragment
// duplicate clusters across bundles.
func E9b(sc Scale) *Table {
	t := &Table{
		ID:      "E9b",
		Title:   "Bundle MaxMembers sweep, AOL-like, τ=0.8, λ=τ",
		Columns: []string{"max-members", "bundles", "appends", "postings", "verify-steps", "throughput rec/s"},
		Notes:   "larger caps keep reducing verification on duplicate-heavy streams; 64 is a safe default bounding worst-case core-maintenance cost",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, maxM := range []int{2, 8, 32, 64, 256} {
		j := local.New(local.Bundled, local.Options{
			Params: p,
			Bundle: bundle.Config{MaxMembers: maxM},
		})
		cost, elapsed, _ := runLocal(recs, j)
		st := j.(interface{ BundleStats() bundle.Stats }).BundleStats()
		t.AddRow(maxM, st.Bundles, st.Appends, cost.Postings,
			cost.VerifySteps, float64(len(recs))/elapsed.Seconds())
	}
	return t
}
