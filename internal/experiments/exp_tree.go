package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/bundle"
	"repro/internal/local"
	"repro/internal/workload"
)

// E23 is the verification-organization sweep: the bundle joiner run in
// collect, tree, and auto verify modes over the E20/E21 workloads
// (long-record enron-like streams at two thresholds plus the
// duplicate-heavy tweet-like stream). Every mode emits byte-identical
// results by construction, so the sweep folds each run's match stream
// into an order-sensitive FNV hash and panics on any divergence — the
// perf comparison is wrapped around a hard parity assertion, like E21's
// kernel sweep. The "vs-collect" column is the verified-candidate
// reduction the filter-and-verification tree achieves by pruning whole
// subtrees (pruned/avoided columns) before any member is materialized.
func E23(sc Scale) *Table {
	t := &Table{
		ID:      "E23",
		Title:   "Candidate-free verification: collect vs tree vs auto (extension)",
		Columns: []string{"profile", "verify", "rec/s", "checks", "verified", "vs-collect", "pruned", "avoided", "results"},
		Notes:   "bundle joiner, single worker; match streams are hashed in emission order and must be identical across modes (the run panics otherwise); vs-collect is the reduction in verified candidates; pruned counts subtrees discarded by tree-node filters, avoided the candidate members inside them",
	}
	profiles := []struct {
		name string
		prof workload.Profile
		tau  float64
	}{
		{"enron-like t0.7", workload.EnronLike(sc.Seed), 0.7},
		{"enron-like t0.8", workload.EnronLike(sc.Seed), 0.8},
		{"tweet-like t0.7", workload.TweetLike(sc.Seed), 0.7},
	}
	modes := []bundle.VerifyMode{bundle.VerifyCollect, bundle.VerifyTree, bundle.VerifyAuto}
	for _, pr := range profiles {
		recs := genProfile(pr.prof, sc.Records)
		p := jaccard(pr.tau)
		var (
			wantHash     uint64
			baseVerified uint64
			haveBase     bool
		)
		for _, vm := range modes {
			cfg := bundle.Config{Kernel: sc.Kernel, VerifyMode: vm}
			j := local.New(local.Bundled, local.Options{Params: p, Bundle: cfg})
			h := fnv.New64a()
			var buf [8]byte
			var results uint64
			start := time.Now()
			for _, r := range recs {
				j.Step(r, true, func(m local.Match) {
					results++
					binary.LittleEndian.PutUint64(buf[:], uint64(m.Rec.ID))
					h.Write(buf[:])
					binary.LittleEndian.PutUint64(buf[:], uint64(m.Overlap))
					h.Write(buf[:])
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(m.Sim))
					h.Write(buf[:])
				})
				// Fold the probe boundary in, so per-record grouping of the
				// stream is part of the identity, not just the flat sequence.
				binary.LittleEndian.PutUint64(buf[:], uint64(r.ID))
				h.Write(buf[:])
			}
			elapsed := time.Since(start)
			st := j.(interface{ BundleStats() bundle.Stats }).BundleStats()
			sum := h.Sum64()
			if !haveBase {
				wantHash, baseVerified, haveBase = sum, st.Verified, true
			} else if sum != wantHash {
				panic(fmt.Sprintf("experiments: E23 verify mode %v on %s diverged from collect (stream hash %016x != %016x) — modes must emit byte-identical results",
					vm, pr.name, sum, wantHash))
			}
			vs := "—"
			if vm != bundle.VerifyCollect && baseVerified > 0 {
				vs = fmt.Sprintf("-%.1f%%", 100*(1-float64(st.Verified)/float64(baseVerified)))
			}
			t.AddRow(pr.name, vm.String(), float64(len(recs))/elapsed.Seconds(),
				st.MemberChecks, st.Verified, vs,
				st.TreeSubtreesPruned, st.TreeCandsAvoided, results)
		}
	}
	return t
}
