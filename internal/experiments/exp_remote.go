package experiments

import (
	"context"
	"fmt"
	"io"
	"net"

	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/remote"
	"repro/internal/workload"
)

// E14 compares the in-process engine against the multi-process TCP runtime
// on the same join: identical results, with the serialization + socket tax
// made visible. This is the deployment-shape extension: the paper runs on
// a Storm cluster; internal/remote is the from-scratch equivalent.
func E14(sc Scale) *Table {
	t := &Table{
		ID:      "E14",
		Title:   fmt.Sprintf("In-process engine vs TCP worker fleet, AOL-like, τ=0.8, k=%d, length-based", sc.Workers),
		Columns: []string{"runtime", "throughput rec/s", "results", "bytes/rec"},
		Notes:   "loopback TCP with real serialization; results must be identical across runtimes",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	k := sc.Workers

	// In-process engine.
	strat := strategyFor("length", p, recs, k)
	res := runTopology(sc, recs, strat, p, k, local.Bundled, nil)
	t.AddRow("in-process", res.Throughput().PerSecond(), res.Results,
		float64(res.CommBytes)/float64(len(recs)))

	// TCP fleet on loopback.
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	w := partition.CostModel{Params: p}.Weights(&h)
	sess := remote.Session{
		Params:    p,
		Algorithm: local.Bundled,
		Strategy:  "length",
		Bounds:    partition.LoadAware(w, k).Bounds,
	}
	ctx := context.Background()
	conns, cleanup, err := loopbackWorkers(ctx, k)
	if err != nil {
		panic(fmt.Sprintf("experiments: loopback workers: %v", err))
	}
	defer cleanup()
	sum, err := remote.Run(ctx, conns, sess, recs, false)
	if err != nil {
		panic(fmt.Sprintf("experiments: remote run: %v", err))
	}
	t.AddRow("tcp-fleet", float64(sum.Records)/sum.Elapsed.Seconds(), sum.Results,
		float64(sum.BytesSent)/float64(len(recs)))
	return t
}

// loopbackWorkers starts k TCP workers on 127.0.0.1 and dials them.
func loopbackWorkers(ctx context.Context, k int) ([]io.ReadWriter, func(), error) {
	var (
		conns     []io.ReadWriter
		listeners []net.Listener
		dialed    []net.Conn
	)
	cleanup := func() {
		for _, c := range dialed {
			c.Close()
		}
		for _, ln := range listeners {
			ln.Close()
		}
	}
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		listeners = append(listeners, ln)
		go remote.ServeWorker(ctx, ln, func(string, ...interface{}) {}) //nolint:errcheck
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		dialed = append(dialed, c)
		conns = append(conns, c)
	}
	return conns, cleanup, nil
}
