package experiments

import (
	"time"

	"repro/internal/local"
	"repro/internal/offline"
	"repro/internal/workload"
)

// E15 contrasts the streaming joiners with the offline AllPairs/PPJoin
// baseline on the same (finite) dataset: the offline join exploits
// length-sorted processing for a shorter index prefix, which a stream
// cannot (arrival order is arbitrary) — quantifying the price of
// streaming.
func E15(sc Scale) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Streaming vs offline join on a static dataset, AOL-like, τ=0.8",
		Columns: []string{"joiner", "postings", "candidates", "results", "throughput rec/s"},
		Notes:   "extension: offline shortens the index prefix via length-sorted processing; results identical",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)

	for _, alg := range []local.Algorithm{local.Prefix, local.Bundled} {
		j := local.New(alg, local.Options{Params: p})
		cost, elapsed, results := runLocal(recs, j)
		t.AddRow("streaming/"+alg.String(), cost.Postings, cost.Candidates, results,
			float64(len(recs))/elapsed.Seconds())
	}
	start := time.Now()
	var results uint64
	st := offline.Join(recs, p, func(offline.Pair) { results++ })
	elapsed := time.Since(start)
	t.AddRow("offline/ppjoin", st.Postings, st.Candidates, results,
		float64(len(recs))/elapsed.Seconds())
	return t
}
