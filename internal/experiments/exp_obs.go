package experiments

import (
	"context"
	"fmt"
	"io"
	"net"

	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/remote"
	"repro/internal/workload"
)

// E22 measures the cost of cluster-wide distributed tracing on the TCP
// runtime. The detached row (no tracer object at all) is the baseline;
// the disabled row checks that merely owning a tracer costs nothing
// (Sample is one atomic add on the nil path and the wire encoding stays
// byte-identical); the sampled rows pay for real trace-context
// annotations on the wire plus span-fragment recording on the workers.
func E22(sc Scale) *Table {
	t := &Table{
		ID:      "E22",
		Title:   fmt.Sprintf("Distributed tracing overhead, AOL-like, τ=0.8, k=%d, length-based (extension)", sc.Workers),
		Columns: []string{"tracing", "throughput rec/s", "results", "sampled", "worker spans", "overhead %"},
		Notes:   "overhead vs the tracer-detached baseline; detached and disabled rows must agree within noise (zero-cost-off contract)",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	k := sc.Workers

	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	w := partition.CostModel{Params: p}.Weights(&h)
	sess := remote.Session{
		Params:    p,
		Algorithm: local.Bundled,
		Strategy:  "length",
		Bounds:    partition.LoadAware(w, k).Bounds,
	}

	var base float64
	for _, row := range []struct {
		name  string
		every int
		own   bool // construct a tracer object at all
	}{
		{"detached", 0, false},
		{"disabled", 0, true},
		{"sampled-1/64", 64, true},
		{"sampled-1/8", 8, true},
	} {
		ctx := context.Background()
		var tracer *obs.Tracer
		if row.own {
			tracer = obs.NewTracer(row.every, 256)
		}
		conns, frags, cleanup, err := loopbackWorkersTraced(ctx, k, row.every > 0)
		if err != nil {
			panic(fmt.Sprintf("experiments: loopback workers: %v", err))
		}
		sum, err := remote.RunWithOpts(ctx, conns, sess, recs, remote.Opts{Tracer: tracer})
		cleanup()
		if err != nil {
			panic(fmt.Sprintf("experiments: traced remote run: %v", err))
		}
		thr := float64(sum.Records) / sum.Elapsed.Seconds()
		if base == 0 {
			base = thr
		}
		var spans uint64
		for _, f := range frags {
			spans += f.Recorded()
		}
		t.AddRow(row.name, thr, sum.Results, tracer.Sampled(), spans,
			(base-thr)/base*100)
	}
	return t
}

// loopbackWorkersTraced starts k TCP workers on 127.0.0.1 and dials them.
// With traced set, each worker records span fragments (the per-worker
// Fragments stores are returned for span accounting); otherwise the
// workers run the plain untraced path.
func loopbackWorkersTraced(ctx context.Context, k int, traced bool) ([]io.ReadWriter, []*obs.Fragments, func(), error) {
	var (
		conns     []io.ReadWriter
		frags     []*obs.Fragments
		listeners []net.Listener
		dialed    []net.Conn
	)
	cleanup := func() {
		for _, c := range dialed {
			c.Close()
		}
		for _, ln := range listeners {
			ln.Close()
		}
	}
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		listeners = append(listeners, ln)
		opts := remote.WorkerOpts{Logf: func(string, ...interface{}) {}}
		if traced {
			f := obs.NewFragments(0)
			frags = append(frags, f)
			opts.Frags = f
		}
		go remote.ServeWorkerOpts(ctx, ln, opts) //nolint:errcheck
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		dialed = append(dialed, c)
		conns = append(conns, c)
	}
	return conns, frags, cleanup, nil
}
