package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func tinyScale() Scale { return Scale{Records: 600, Workers: 3, Seed: 5} }

func TestAllExperimentsRunAndProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(tinyScale())
			if tab.ID != e.ID {
				t.Fatalf("table id %q != experiment id %q", tab.ID, e.ID)
			}
			if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("empty table: %+v", tab)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tab.Columns))
				}
			}
			out := tab.Format()
			if !strings.Contains(out, tab.Title) {
				t.Fatal("formatted output missing title")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestE1ReportsAllThresholds(t *testing.T) {
	tab := E1(tinyScale())
	if len(tab.Rows) != len(thresholds) {
		t.Fatalf("rows: %d want %d", len(tab.Rows), len(thresholds))
	}
	for i, tau := range thresholds {
		if !strings.HasPrefix(tab.Cell(i, 0), strconv.FormatFloat(tau, 'f', 1, 64)) {
			t.Fatalf("row %d threshold cell %q", i, tab.Cell(i, 0))
		}
	}
}

func TestE7ResultsAgreeAcrossAlgorithms(t *testing.T) {
	tab := E7(tinyScale())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	resCol := 3
	first := tab.Cell(0, resCol)
	for i := 1; i < 3; i++ {
		if tab.Cell(i, resCol) != first {
			t.Fatalf("algorithms disagree on results: %q vs %q", first, tab.Cell(i, resCol))
		}
	}
}

func TestE8ResultsIdenticalAndStepsSaved(t *testing.T) {
	tab := E8(Scale{Records: 1500, Workers: 2, Seed: 9})
	if tab.Cell(0, 2) != tab.Cell(1, 2) {
		t.Fatalf("results differ: %q vs %q", tab.Cell(0, 2), tab.Cell(1, 2))
	}
	single, err := strconv.ParseUint(tab.Cell(0, 1), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := strconv.ParseUint(tab.Cell(1, 1), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if batch >= single {
		t.Fatalf("batch verification not cheaper: %d vs %d", batch, single)
	}
}

func TestE4LengthBasedNeverReplicates(t *testing.T) {
	tab := E4(tinyScale())
	for _, row := range tab.Rows {
		if row[1] == "length" && row[2] != "1.000" {
			t.Fatalf("length-based replication factor %q != 1.000", row[2])
		}
	}
}

func TestE5LoadAwareBestEstimatedBalance(t *testing.T) {
	tab := E5(Scale{Records: 3000, Workers: 4, Seed: 11})
	// Rows come in triples per profile: even-length, even-frequency,
	// load-aware. Estimated imbalance of load-aware must be the smallest
	// of its triple.
	for base := 0; base+2 < len(tab.Rows); base += 3 {
		parse := func(i int) float64 {
			v, err := strconv.ParseFloat(tab.Cell(base+i, 2), 64)
			if err != nil {
				t.Fatalf("bad cell: %v", err)
			}
			return v
		}
		la := parse(2)
		if la > parse(0)+1e-9 || la > parse(1)+1e-9 {
			t.Fatalf("load-aware not best at rows %d..%d: %v vs %v, %v",
				base, base+2, la, parse(0), parse(1))
		}
	}
}

func TestQuickMedian(t *testing.T) {
	if m := quickMedian([]int{5, 1, 9, 3, 7}); m != 5 {
		t.Fatalf("median: %d", m)
	}
	if m := quickMedian(nil); m != 0 {
		t.Fatalf("empty median: %d", m)
	}
}

func TestWorkerSweep(t *testing.T) {
	if got := workerSweep(8); len(got) != 4 || got[3] != 8 {
		t.Fatalf("sweep(8): %v", got)
	}
	if got := workerSweep(3); len(got) != 2 {
		t.Fatalf("sweep(3): %v", got)
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-cell", 3.25)
	out := tab.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "b,c"}}
	tab.AddRow("plain", `has "quotes"`)
	got := tab.CSV()
	want := "a,\"b,c\"\nplain,\"has \"\"quotes\"\"\"\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}
