package experiments

import (
	"fmt"

	"repro/internal/local"
	"repro/internal/topology"
	"repro/internal/workload"
)

// E16 sweeps a simulated per-byte network cost to recover the cluster-scale
// throughput gap: on loopback channels communication is nearly free, so the
// length-based framework's smaller fan-out buys little wall-clock; as the
// per-tuple cost approaches real network+deserialization budgets, the gap
// widens toward the order of magnitude the paper reports on Storm.
func E16(sc Scale) *Table {
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("Throughput vs simulated network cost, AOL-like, τ=0.8, k=%d", sc.Workers),
		Columns: []string{"ns/byte", "length", "prefix", "broadcast", "length/broadcast"},
		Notes:   "0 ns/B = loopback; 50–200 ns/B brackets real deserialization+NIC budgets; the gap widens with cost because broadcast receives k copies of every record",
	}
	recs := genProfile(workload.AOLLike(sc.Seed), sc.Records)
	p := jaccard(0.8)
	for _, nsPerB := range []int{0, 20, 50, 100, 200} {
		rates := map[string]float64{}
		for _, name := range frameworkNames {
			strat := strategyFor(name, p, recs, sc.Workers)
			res, err := topology.Run(recs, topology.Config{
				Workers:       sc.Workers,
				Strategy:      strat,
				Algorithm:     local.Bundled,
				Params:        p,
				WireNsPerByte: nsPerB,
				BatchSize:     sc.Batch,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: E16: %v", err))
			}
			rates[name] = res.Throughput().PerSecond()
		}
		t.AddRow(nsPerB, rates["length"], rates["prefix"], rates["broadcast"],
			ratio(rates["length"], rates["broadcast"]))
	}
	return t
}
