package experiments

import (
	"fmt"
	"time"

	"repro/internal/bundle"
	"repro/internal/local"
	"repro/internal/similarity"
	"repro/internal/workload"
)

// E21 is the verification-kernel sweep: the bundle joiner run with each
// intersection kernel (linear merge, galloping, word-packed bitset, and
// the auto dispatcher) over a verification-bound long-record stream and a
// short-record duplicate-heavy stream. Every kernel computes exact
// overlaps, so the result column must be constant within a profile — the
// sweep is a perf comparison wrapped around a parity assertion. The mix
// columns show which kernel the auto dispatcher actually picked per
// overlap, and "pruned" counts candidates discarded by the upper-bound
// checks before any kernel ran.
func E21(sc Scale) *Table {
	t := &Table{
		ID:      "E21",
		Title:   "Verification kernel sweep: linear vs gallop vs bitset vs auto (extension)",
		Columns: []string{"profile", "kernel", "rec/s", "verify-steps", "linear", "gallop", "bitset", "pruned", "results"},
		Notes:   "bundle joiner, single worker; results are identical across kernels by construction (exact overlaps); steps count merge comparisons for linear/gallop and packed words touched for bitset",
	}
	profiles := []struct {
		name string
		prof workload.Profile
		tau  float64
	}{
		{"enron-like", workload.EnronLike(sc.Seed), 0.8},
		{"tweet-like", workload.TweetLike(sc.Seed), 0.7},
	}
	kernels := []struct {
		name string
		mode similarity.Kernel
	}{
		{"linear", similarity.KernelLinear},
		{"gallop", similarity.KernelGallop},
		{"bitset", similarity.KernelBitset},
		{"auto", similarity.KernelAuto},
	}
	for _, pr := range profiles {
		recs := genProfile(pr.prof, sc.Records)
		p := jaccard(pr.tau)
		var wantResults uint64
		haveWant := false
		for _, kn := range kernels {
			j := local.New(local.Bundled, local.Options{
				Params: p,
				Bundle: bundle.Config{Kernel: similarity.KernelConfig{Mode: kn.mode}},
			})
			start := time.Now()
			var results uint64
			for _, r := range recs {
				j.Step(r, true, func(local.Match) { results++ })
			}
			elapsed := time.Since(start)
			cost := j.Cost()
			st := j.(interface{ BundleStats() bundle.Stats }).BundleStats()
			if !haveWant {
				wantResults, haveWant = results, true
			} else if results != wantResults {
				panic(fmt.Sprintf("experiments: E21 kernel %s on %s emitted %d results, linear emitted %d — kernels must agree exactly",
					kn.name, pr.name, results, wantResults))
			}
			t.AddRow(pr.name, kn.name, float64(len(recs))/elapsed.Seconds(),
				cost.VerifySteps, st.KernelLinear, st.KernelGallop, st.KernelBitset,
				st.Pruned(), results)
		}
	}
	return t
}
