package experiments

import (
	"fmt"

	"repro/internal/local"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/workload"
)

// E13 evaluates adaptive repartitioning under workload drift: the stream
// starts as a short-record query log and shifts to long documents. A
// static partition fitted to phase A degrades in phase B; the tracker
// detects the drift and a refit restores balance. Repartitioning is
// applied at the phase boundary (windowed streams age the old index out,
// so no state migration is simulated).
func E13(sc Scale) *Table {
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Adaptive repartitioning under drift, AOL-like → ENRON-like, τ=0.8, k=%d", sc.Workers),
		Columns: []string{"policy", "phase", "est. imbalance", "realized imbalance", "throughput rec/s"},
		Notes:   "extension (paper future work): tracker flags drift when the active split is ≥1.3x worse than a refit",
	}
	p := jaccard(0.8)
	k := sc.Workers
	n := sc.Records / 2
	phaseA := genProfile(workload.AOLLike(sc.Seed), n)
	phaseB := reID(genProfile(workload.EnronLike(sc.Seed), n), record.ID(n))

	histA := histogramOf(phaseA)
	weightsOf := func(recs []*record.Record) []float64 {
		return partition.CostModel{Params: p}.Weights(histogramOf(recs))
	}
	staticPart := partition.LoadAware(weightsOf(phaseA), k)

	runPhase := func(name, phase string, part partition.Partition, recs []*record.Record) {
		strat := lengthWith(p, part)
		res := runTopology(sc, recs, strat, p, k, local.Bundled, nil)
		est := partition.Imbalance(part, weightsOf(recs))
		loads := make([]float64, len(res.WorkerCosts))
		for i, c := range res.WorkerCosts {
			loads[i] = float64(c.VerifySteps + c.Scanned)
		}
		t.AddRow(name, phase, est, metrics.SummarizeLoads(loads).Imbalance,
			res.Throughput().PerSecond())
	}

	// Static: the phase-A partition serves both phases.
	runPhase("static", "A (short)", staticPart, phaseA)
	runPhase("static", "B (long)", staticPart, phaseB)

	// Adaptive: a tracker watches the stream; at the drift alarm the
	// partition is refitted from the tracker's sliding window.
	tracker := partition.NewTracker(p, minInt(4096, n))
	for _, r := range phaseA {
		tracker.Observe(r.Len())
	}
	active := tracker.Refit(k)
	runPhase("adaptive", "A (short)", active, phaseA)
	repartitions := 0
	for _, r := range phaseB {
		tracker.Observe(r.Len())
		if tracker.ShouldRepartition(active, 1.3) {
			active = tracker.Refit(k)
			repartitions++
		}
	}
	runPhase("adaptive", "B (long)", active, phaseB)
	t.Notes += fmt.Sprintf("; adaptive repartitioned %d time(s) during phase B", repartitions)
	_ = histA
	return t
}

func reID(recs []*record.Record, base record.ID) []*record.Record {
	for i, r := range recs {
		r.ID = base + record.ID(i)
		r.Time = int64(r.ID)
	}
	return recs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
