// Package window defines the sliding-window policies that bound how far
// back in the stream an incoming record may find join partners. A policy is
// a pure liveness predicate; the index drives eviction with it.
package window

import (
	"fmt"

	"repro/internal/record"
)

// Policy decides whether a stored record is still joinable when the stream
// has advanced to (nowSeq, nowTime). nowSeq is the arrival sequence number
// of the record currently being processed; nowTime its event time.
// Implementations must be monotone: once a record dies it stays dead as the
// stream advances.
type Policy interface {
	Live(recSeq record.ID, recTime int64, nowSeq record.ID, nowTime int64) bool
	String() string
}

// Count keeps the most recent N records: a stored record is live while
// fewer than N records arrived after it.
type Count struct{ N int64 }

// Live implements Policy.
func (c Count) Live(recSeq record.ID, _ int64, nowSeq record.ID, _ int64) bool {
	return int64(nowSeq)-int64(recSeq) <= c.N
}

// String implements fmt.Stringer.
func (c Count) String() string { return fmt.Sprintf("count(%d)", c.N) }

// Time keeps records whose event time is within Span ticks of the current
// record's event time.
type Time struct{ Span int64 }

// Live implements Policy.
func (t Time) Live(_ record.ID, recTime int64, _ record.ID, nowTime int64) bool {
	return nowTime-recTime <= t.Span
}

// String implements fmt.Stringer.
func (t Time) String() string { return fmt.Sprintf("time(%d)", t.Span) }

// Unbounded never evicts; useful for finite experiment datasets and for
// validating streaming output against offline joins.
type Unbounded struct{}

// Live implements Policy.
func (Unbounded) Live(record.ID, int64, record.ID, int64) bool { return true }

// String implements fmt.Stringer.
func (Unbounded) String() string { return "unbounded" }

// The interface uses record.ID for sequence parameters; the compiler check
// below keeps all three policies honest.
var (
	_ Policy = Count{}
	_ Policy = Time{}
	_ Policy = Unbounded{}
)
