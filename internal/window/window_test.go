package window

import (
	"testing"

	"repro/internal/record"
)

func TestCountWindow(t *testing.T) {
	w := Count{N: 3}
	// Record with seq 10; stream at seq 13 → exactly 3 later arrivals → live.
	if !w.Live(10, 0, 13, 0) {
		t.Fatal("seq distance 3 should be live for N=3")
	}
	if w.Live(10, 0, 14, 0) {
		t.Fatal("seq distance 4 should be dead for N=3")
	}
	if !w.Live(10, 0, 10, 0) {
		t.Fatal("record is live at its own arrival")
	}
}

func TestTimeWindow(t *testing.T) {
	w := Time{Span: 100}
	if !w.Live(0, 50, 0, 150) {
		t.Fatal("age 100 should be live for span 100")
	}
	if w.Live(0, 50, 0, 151) {
		t.Fatal("age 101 should be dead for span 100")
	}
}

func TestUnbounded(t *testing.T) {
	w := Unbounded{}
	if !w.Live(0, 0, 1<<40, 1<<40) {
		t.Fatal("unbounded must never evict")
	}
}

func TestPoliciesAreMonotone(t *testing.T) {
	policies := []Policy{Count{N: 5}, Time{Span: 7}, Unbounded{}}
	for _, p := range policies {
		dead := false
		for now := int64(0); now < 50; now++ {
			live := p.Live(record.ID(0), 0, record.ID(now), now)
			if dead && live {
				t.Fatalf("%v: record resurrected at now=%d", p, now)
			}
			if !live {
				dead = true
			}
		}
	}
}

func TestStrings(t *testing.T) {
	if (Count{N: 4}).String() != "count(4)" {
		t.Fatal("count string")
	}
	if (Time{Span: 9}).String() != "time(9)" {
		t.Fatal("time string")
	}
	if (Unbounded{}).String() != "unbounded" {
		t.Fatal("unbounded string")
	}
}
