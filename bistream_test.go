package ssjoin

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBiStreamCrossSideOnly(t *testing.T) {
	b, err := NewBiStream(Config{Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	idL, m := b.AddLeft([]uint32{1, 2, 3, 4})
	if len(m) != 0 {
		t.Fatalf("first record matched: %v", m)
	}
	// Same-side duplicate must NOT match.
	_, m = b.AddLeft([]uint32{1, 2, 3, 4})
	if len(m) != 0 {
		t.Fatalf("same-side pair reported: %v", m)
	}
	// Cross-side duplicate must match both left copies.
	_, m = b.AddRight([]uint32{1, 2, 3, 4})
	if len(m) != 2 {
		t.Fatalf("cross-side matches: %v", m)
	}
	found := false
	for _, mm := range m {
		if mm.ID == idL {
			found = true
		}
	}
	if !found {
		t.Fatalf("first left record not matched: %v", m)
	}
	if b.SizeLeft() != 2 || b.SizeRight() != 1 {
		t.Fatalf("sizes: %d/%d", b.SizeLeft(), b.SizeRight())
	}
}

// TestBiStreamMatchesBruteForce interleaves two random streams and compares
// against a brute-force cross join, for all algorithms and a count window.
func TestBiStreamMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	type rec struct {
		id   uint64
		left bool
		set  []uint32
	}
	var script []rec
	for i := 0; i < 500; i++ {
		n := 3 + rng.Intn(8)
		set := make([]uint32, n)
		for j := range set {
			set[j] = uint32(rng.Intn(60))
		}
		script = append(script, rec{left: rng.Float64() < 0.5, set: set})
	}
	jacc := func(a, b []uint32) float64 {
		am := map[uint32]bool{}
		for _, x := range a {
			am[x] = true
		}
		bm := map[uint32]bool{}
		o := 0
		for _, x := range b {
			if bm[x] {
				continue
			}
			bm[x] = true
			if am[x] {
				o++
			}
		}
		return float64(o) / float64(len(am)+len(bm)-o)
	}
	for _, alg := range []Algorithm{Naive, Prefix, Bundle} {
		for _, winN := range []int64{0, 100} {
			b, err := NewBiStream(Config{Threshold: 0.7, Algorithm: alg, WindowRecords: winN})
			if err != nil {
				t.Fatal(err)
			}
			type pr struct{ a, b uint64 }
			got := make(map[pr]bool)
			for i := range script {
				var id uint64
				var ms []Match
				if script[i].left {
					id, ms = b.AddLeft(script[i].set)
				} else {
					id, ms = b.AddRight(script[i].set)
				}
				script[i].id = id
				for _, m := range ms {
					p := pr{m.ID, id}
					if got[p] {
						t.Fatalf("%v win=%d: duplicate %v", alg, winN, p)
					}
					got[p] = true
				}
			}
			want := make(map[pr]bool)
			for i := range script {
				for j := 0; j < i; j++ {
					if script[i].left == script[j].left {
						continue
					}
					if winN > 0 && int64(i-j) > winN {
						continue
					}
					if jacc(script[i].set, script[j].set) >= 0.7-1e-12 {
						want[pr{script[j].id, script[i].id}] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%v win=%d: got %d pairs want %d", alg, winN, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v win=%d: missing %v", alg, winN, p)
				}
			}
		}
	}
}

func TestBiStreamValidation(t *testing.T) {
	if _, err := NewBiStream(Config{}); err == nil {
		t.Fatal("missing threshold accepted")
	}
}

func TestTextBiStreamCrossSourceOnly(t *testing.T) {
	tb, err := NewTextBiStream(Config{Threshold: 0.7}, Words, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.AddLeft("maria garcia oak avenue springfield")
	_, same := tb.AddLeft("maria garcia oak avenue springfield")
	if len(same) != 0 {
		t.Fatalf("same-source match reported: %v", same)
	}
	_, cross := tb.AddRight("MARIA garcia oak avenue springfield")
	if len(cross) != 2 {
		t.Fatalf("cross-source matches: %v", cross)
	}
	if tb.SizeLeft() != 2 || tb.SizeRight() != 1 {
		t.Fatalf("sizes: %d/%d", tb.SizeLeft(), tb.SizeRight())
	}
}

func TestTextBiStreamQGramsAndValidation(t *testing.T) {
	if _, err := NewTextBiStream(Config{}, Words, nil); err == nil {
		t.Fatal("missing threshold accepted")
	}
	if _, err := NewTextBiStream(Config{Threshold: 0.6}, Tokenization(9), nil); err == nil {
		t.Fatal("bad tokenization accepted")
	}
	tb, err := NewTextBiStream(Config{Threshold: 0.6}, QGrams, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.AddLeft("similarity")
	_, m := tb.AddRight("similarty")
	if len(m) != 1 {
		t.Fatalf("qgram cross match: %v", m)
	}
}

func TestBiStreamSnapshotRestore(t *testing.T) {
	cfg := Config{Threshold: 0.7, WindowRecords: 60}
	b, err := NewBiStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	makeSet := func() []uint32 {
		n := 3 + rng.Intn(6)
		set := make([]uint32, n)
		for j := range set {
			set[j] = uint32(rng.Intn(40))
		}
		return set
	}
	type step struct {
		right bool
		set   []uint32
	}
	var script []step
	for i := 0; i < 200; i++ {
		script = append(script, step{right: rng.Float64() < 0.5, set: makeSet()})
	}
	feed := func(b *BiStream, s step) (uint64, int) {
		if s.right {
			id, ms := b.AddRight(s.set)
			return id, len(ms)
		}
		id, ms := b.AddLeft(s.set)
		return id, len(ms)
	}
	for _, s := range script[:120] {
		feed(b, s)
	}
	var buf bytes.Buffer
	if err := b.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreBiStream(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SizeLeft() != b.SizeLeft() || restored.SizeRight() != b.SizeRight() {
		t.Fatalf("sizes diverge: %d/%d vs %d/%d",
			restored.SizeLeft(), restored.SizeRight(), b.SizeLeft(), b.SizeRight())
	}
	for _, s := range script[120:] {
		idA, nA := feed(b, s)
		idB, nB := feed(restored, s)
		if idA != idB || nA != nB {
			t.Fatalf("divergence: (%d,%d) vs (%d,%d)", idA, nA, idB, nB)
		}
	}
}

func TestRestoreBiStreamRejectsGarbage(t *testing.T) {
	if _, err := RestoreBiStream(bytes.NewReader([]byte("junk")), Config{Threshold: 0.8}); err == nil {
		t.Fatal("garbage accepted")
	}
}
