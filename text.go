package ssjoin

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/record"
	"repro/internal/tokens"
)

// Tokenization selects how TextStream splits text into tokens.
type Tokenization int

// Supported tokenizations: Words splits on whitespace with lowercasing and
// punctuation trimming; QGrams uses overlapping character 3-grams, the
// usual choice for short dirty strings.
const (
	Words Tokenization = iota
	QGrams
)

// TextStream is a Stream over raw text: it tokenizes, interns tokens, and
// maintains the global rarest-first token ordering that prefix filtering
// requires. Bootstrap the ordering with a representative sample for best
// pruning; tokens first seen after the sample are treated as rare, which is
// safe.
type TextStream struct {
	stream  *Stream
	builder *record.Builder
}

// NewTextStream builds a TextStream whose token-frequency ordering is
// frozen from sample (which may be nil: all tokens then rank by first
// appearance, costing pruning power but never correctness).
func NewTextStream(cfg Config, tok Tokenization, sample []string) (*TextStream, error) {
	stream, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	var tkz tokens.Tokenizer
	switch tok {
	case Words:
		tkz = tokens.WordTokenizer{}
	case QGrams:
		tkz = tokens.QGramTokenizer{Q: 3, Pad: true}
	default:
		return nil, fmt.Errorf("ssjoin: unknown tokenization %d", int(tok))
	}
	dict, order := record.BuildOrderingFromSample(tkz, sample)
	return &TextStream{
		stream:  stream,
		builder: record.NewBuilder(dict, order, tkz),
	}, nil
}

// Add ingests one text record and returns its ID and matches. Texts that
// tokenize to the empty set get an ID but never match anything.
func (t *TextStream) Add(text string) (id uint64, matches []Match) {
	r := t.builder.FromText(text)
	return t.stream.addRecord(&r)
}

// WriteSnapshot persists the tokenizer state (dictionary and frozen
// ordering) together with the stream's window state, so RestoreTextStream
// reproduces identical tokenization and matching.
func (t *TextStream) WriteSnapshot(w io.Writer) error {
	if _, err := w.Write(textMagic); err != nil {
		return err
	}
	if err := t.builder.Dict.Save(w); err != nil {
		return fmt.Errorf("ssjoin: saving dictionary: %w", err)
	}
	if err := t.builder.Order.Save(w); err != nil {
		return fmt.Errorf("ssjoin: saving ordering: %w", err)
	}
	return t.stream.WriteSnapshot(w)
}

var textMagic = []byte("SSJTXT\x01")

// RestoreTextStream reconstructs a TextStream from a snapshot written by
// WriteSnapshot. cfg and tok must match the snapshotting stream's.
func RestoreTextStream(r io.Reader, cfg Config, tok Tokenization) (*TextStream, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(textMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("ssjoin: reading text snapshot magic: %w", err)
	}
	if !bytes.Equal(got, textMagic) {
		return nil, fmt.Errorf("ssjoin: not a text-stream snapshot")
	}
	dict, err := tokens.LoadDictionary(br)
	if err != nil {
		return nil, err
	}
	order, err := tokens.LoadOrdering(br, dict)
	if err != nil {
		return nil, err
	}
	stream, err := RestoreStream(br, cfg)
	if err != nil {
		return nil, err
	}
	var tkz tokens.Tokenizer
	switch tok {
	case Words:
		tkz = tokens.WordTokenizer{}
	case QGrams:
		tkz = tokens.QGramTokenizer{Q: 3, Pad: true}
	default:
		return nil, fmt.Errorf("ssjoin: unknown tokenization %d", int(tok))
	}
	builder := record.NewBuilder(dict, order, tkz)
	builder.SetCursor(stream.nextID, stream.tick)
	return &TextStream{stream: stream, builder: builder}, nil
}

// Size reports the number of records currently stored.
func (t *TextStream) Size() int { return t.stream.Size() }

// Stats reports accumulated work counters.
func (t *TextStream) Stats() Stats { return t.stream.Stats() }

// RefreshOrdering rebuilds the global token ordering from the document
// frequencies accumulated while streaming, then re-encodes every stored
// record under the new ranks and rebuilds the index.
//
// Why: the ordering is frozen from the bootstrap sample, so tokens that
// became frequent later keep "rare" ranks, sit in record prefixes, and
// drag enormous posting lists into every probe. Refreshing restores the
// rare-first invariant that makes prefix filtering effective. The
// operation is O(window size); run it when the stream's vocabulary has
// drifted (e.g. on a candidate-rate alarm or a timer).
//
// Record IDs, times and window contents are preserved exactly, so match
// semantics are unchanged — only the pruning power improves.
func (t *TextStream) RefreshOrdering() {
	oldOrder := t.builder.Order
	// Inverse of the old ordering: rank → token.
	inv := make(map[uint32]tokens.Token)
	oldOrder.DumpRanks(func(id tokens.Token, r uint32) { inv[r] = id })

	newOrder := tokens.NewOrdering(t.builder.Dict)

	// Re-encode the live window under the new ranks.
	type stored struct {
		id   record.ID
		time int64
		set  []tokens.Rank
	}
	var windowRecs []stored
	t.stream.joiner.Dump(func(r *record.Record) bool {
		set := make([]tokens.Rank, 0, len(r.Tokens))
		for _, rank := range r.Tokens {
			id, ok := inv[rank]
			if !ok {
				// A rank with no token cannot occur: every stored rank was
				// produced by the old ordering. Keep it verbatim if it ever
				// does (future-proofing), costing only pruning power.
				set = append(set, rank)
				continue
			}
			set = append(set, newOrder.RankOf(id))
		}
		windowRecs = append(windowRecs, stored{id: r.ID, time: r.Time, set: tokens.Dedup(set)})
		return true
	})

	fresh := t.stream.freshJoiner()
	for _, sr := range windowRecs {
		fresh.Load(&record.Record{ID: sr.id, Time: sr.time, Tokens: sr.set})
	}
	t.stream.joiner = fresh
	t.builder.Order = newOrder
}

// TextBiStream is a BiStream over raw text: two sources share one
// dictionary and ordering, and records match only across sources — the
// text-level data-integration entry point.
type TextBiStream struct {
	bi      *BiStream
	builder *record.Builder
}

// NewTextBiStream builds a TextBiStream; see NewTextStream for the sample
// semantics.
func NewTextBiStream(cfg Config, tok Tokenization, sample []string) (*TextBiStream, error) {
	bi, err := NewBiStream(cfg)
	if err != nil {
		return nil, err
	}
	var tkz tokens.Tokenizer
	switch tok {
	case Words:
		tkz = tokens.WordTokenizer{}
	case QGrams:
		tkz = tokens.QGramTokenizer{Q: 3, Pad: true}
	default:
		return nil, fmt.Errorf("ssjoin: unknown tokenization %d", int(tok))
	}
	dict, order := record.BuildOrderingFromSample(tkz, sample)
	return &TextBiStream{
		bi:      bi,
		builder: record.NewBuilder(dict, order, tkz),
	}, nil
}

func (t *TextBiStream) add(text string, right bool) (uint64, []Match) {
	r := t.builder.FromText(text)
	// The builder and BiStream each assign sequential IDs from zero, so
	// they stay in lock step; tokens come from the shared builder.
	set := make([]uint32, len(r.Tokens))
	copy(set, r.Tokens)
	if right {
		return t.bi.AddRight(set)
	}
	return t.bi.AddLeft(set)
}

// AddLeft ingests one left-source text record and returns its matches
// among stored right-source records.
func (t *TextBiStream) AddLeft(text string) (id uint64, matches []Match) {
	return t.add(text, false)
}

// AddRight ingests one right-source text record symmetrically.
func (t *TextBiStream) AddRight(text string) (id uint64, matches []Match) {
	return t.add(text, true)
}

// SizeLeft and SizeRight report stored records per source.
func (t *TextBiStream) SizeLeft() int { return t.bi.SizeLeft() }

// SizeRight reports the stored right-source record count.
func (t *TextBiStream) SizeRight() int { return t.bi.SizeRight() }
