// Package ssjoin is a streaming set-similarity join library: it finds, for
// every record arriving on a stream, all earlier records whose set
// similarity (Jaccard, Cosine, Dice or Overlap) reaches a threshold —
// online near-duplicate detection, data cleaning, and data integration are
// the canonical applications.
//
// The library reproduces the system of "Distributed Streaming Set
// Similarity Join" (ICDE 2020): a single-node streaming joiner built on
// prefix filtering with bundle-based grouping and batch verification, and a
// distributed runtime that dispatches records to workers by length — the
// paper's length-based distribution framework — with prefix-based and
// broadcast-based frameworks as baselines.
//
// # Quick start
//
//	js, _ := ssjoin.NewStream(ssjoin.Config{Threshold: 0.8})
//	id0, _ := js.Add([]uint32{1, 2, 3, 4, 5})
//	_, matches := js.Add([]uint32{1, 2, 3, 4, 6})
//	// matches[0].ID == id0
//
// For raw text, NewTextStream tokenizes and maintains the global token
// ordering for you. For distributed execution over an in-process worker
// fleet, see RunDistributed.
package ssjoin

import (
	"fmt"

	"repro/internal/bundle"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/tokens"
	"repro/internal/window"
)

// Similarity selects the set-similarity function.
type Similarity int

// Supported similarity functions. Thresholds for the first three are
// fractions in (0, 1]; Overlap thresholds are absolute intersection counts.
const (
	Jaccard Similarity = iota
	Cosine
	Dice
	Overlap
)

func (s Similarity) internal() (similarity.Func, error) {
	switch s {
	case Jaccard:
		return similarity.Jaccard, nil
	case Cosine:
		return similarity.Cosine, nil
	case Dice:
		return similarity.Dice, nil
	case Overlap:
		return similarity.Overlap, nil
	default:
		return 0, fmt.Errorf("ssjoin: unknown similarity %d", int(s))
	}
}

// String implements fmt.Stringer.
func (s Similarity) String() string {
	f, err := s.internal()
	if err != nil {
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
	return f.String()
}

// Algorithm selects the local join algorithm.
type Algorithm int

// Supported algorithms. Bundle is the paper's contribution and the default;
// Prefix is the record-at-a-time prefix-filter joiner; Naive is a
// brute-force reference useful for validation.
const (
	Bundle Algorithm = iota
	Prefix
	Naive
)

func (a Algorithm) internal() (local.Algorithm, error) {
	switch a {
	case Bundle:
		return local.Bundled, nil
	case Prefix:
		return local.Prefix, nil
	case Naive:
		return local.Naive, nil
	default:
		return 0, fmt.Errorf("ssjoin: unknown algorithm %d", int(a))
	}
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	l, err := a.internal()
	if err != nil {
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
	return l.String()
}

// Config parameterizes a join stream.
type Config struct {
	// Threshold is the similarity threshold (required). For Jaccard,
	// Cosine and Dice it must lie in (0, 1]; for Overlap it is a count.
	Threshold float64
	// Function selects the similarity function (default Jaccard).
	Function Similarity
	// Algorithm selects the joiner (default Bundle).
	Algorithm Algorithm
	// WindowRecords keeps only the most recent N records joinable
	// (0 = unbounded).
	WindowRecords int64
	// WindowTicks keeps only records whose logical timestamp is within
	// this many ticks (0 = unbounded). At most one of WindowRecords and
	// WindowTicks may be set.
	WindowTicks int64
	// GroupThreshold is the bundle grouping threshold λ (default: the join
	// threshold). Ignored unless Algorithm is Bundle.
	GroupThreshold float64
	// MaxBundle caps bundle membership (default 64). Ignored unless
	// Algorithm is Bundle.
	MaxBundle int
	// Kernel selects the verification intersection kernel: "auto" (the
	// default), "linear", "gallop", or "bitset". Every kernel computes
	// exact overlaps, so the choice never changes results — only the work
	// profile. Ignored unless Algorithm is Bundle.
	Kernel string
	// VerifyMode selects how candidate verification is organized:
	// "collect" (the default) gathers candidate members from the prefix
	// index and verifies them one by one; "tree" probes a prefix-ordered
	// filter-and-verification tree that prunes whole candidate subtrees
	// with length/position/suffix filters before any member is touched;
	// "auto" switches per probe by live index size. Every mode emits
	// byte-identical results — only the candidate workload differs.
	// Ignored unless Algorithm is Bundle.
	VerifyMode string
}

func (c Config) build() (filter.Params, window.Policy, local.Algorithm, bundle.Config, error) {
	f, err := c.Function.internal()
	if err != nil {
		return filter.Params{}, nil, 0, bundle.Config{}, err
	}
	alg, err := c.Algorithm.internal()
	if err != nil {
		return filter.Params{}, nil, 0, bundle.Config{}, err
	}
	if c.Threshold <= 0 {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: Threshold must be positive, got %v", c.Threshold)
	}
	if f != similarity.Overlap && c.Threshold > 1 {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: %v threshold must be in (0,1], got %v", f, c.Threshold)
	}
	if c.WindowRecords < 0 || c.WindowTicks < 0 {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: window sizes must be non-negative")
	}
	if c.WindowRecords > 0 && c.WindowTicks > 0 {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: set at most one of WindowRecords and WindowTicks")
	}
	var win window.Policy = window.Unbounded{}
	if c.WindowRecords > 0 {
		win = window.Count{N: c.WindowRecords}
	} else if c.WindowTicks > 0 {
		win = window.Time{Span: c.WindowTicks}
	}
	kern, err := similarity.ParseKernel(c.Kernel)
	if err != nil {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: %w", err)
	}
	vm, err := bundle.ParseVerifyMode(c.VerifyMode)
	if err != nil {
		return filter.Params{}, nil, 0, bundle.Config{}, fmt.Errorf("ssjoin: %w", err)
	}
	params := filter.Params{Func: f, Threshold: c.Threshold}
	bcfg := bundle.Config{
		GroupThreshold: c.GroupThreshold,
		MaxMembers:     c.MaxBundle,
		Kernel:         similarity.KernelConfig{Mode: kern},
		VerifyMode:     vm,
	}
	return params, win, alg, bcfg, nil
}

// Match is one verified join result.
type Match struct {
	// ID identifies the earlier record the new record matched.
	ID uint64
	// Overlap is the exact intersection size.
	Overlap int
	// Similarity is the exact similarity value.
	Similarity float64
}

// Pair is a symmetric result pair as reported by distributed runs.
type Pair struct {
	A, B       uint64
	Similarity float64
}

// Stats summarizes the work a Stream has performed.
type Stats struct {
	// Records processed so far.
	Records uint64
	// Stored records currently joinable (inside the window).
	Stored int
	// Results emitted so far.
	Results uint64
	// Candidates checked and Verified pairs fully compared.
	Candidates, Verified uint64
}

// Stream is a single-node streaming self-join. It is not safe for
// concurrent use; shard across goroutines with RunDistributed or your own
// fan-out when one core is not enough.
type Stream struct {
	cfg     Config
	joiner  local.Joiner
	nextID  record.ID
	tick    int64
	records uint64
	scratch []Match
	// base accumulates work counters from joiners retired by index
	// rebuilds (ordering refresh), so Stats stays cumulative.
	base Stats
}

// NewStream validates cfg and returns an empty join stream.
func NewStream(cfg Config) (*Stream, error) {
	params, win, alg, bcfg, err := cfg.build()
	if err != nil {
		return nil, err
	}
	return &Stream{
		cfg:    cfg,
		joiner: local.New(alg, local.Options{Params: params, Window: win, Bundle: bcfg}),
	}, nil
}

// freshJoiner builds an empty joiner with the stream's configuration and
// retires the current one's counters into the cumulative base (the
// ordering-refresh rebuild path).
func (s *Stream) freshJoiner() local.Joiner {
	c := s.joiner.Cost()
	s.base.Results += c.Results
	s.base.Candidates += c.Candidates
	s.base.Verified += c.Verified
	params, win, alg, bcfg, _ := s.cfg.build() // cfg was validated at construction
	return local.New(alg, local.Options{Params: params, Window: win, Bundle: bcfg})
}

// Add ingests the next record given as a token multiset (any order,
// duplicates ignored), returning the record's assigned ID and all matches
// among earlier in-window records. The returned slice is reused by the next
// Add call; copy it if you keep it.
func (s *Stream) Add(tokenSet []uint32) (id uint64, matches []Match) {
	set := make([]tokens.Rank, len(tokenSet))
	copy(set, tokenSet)
	r := &record.Record{ID: s.nextID, Time: s.tick, Tokens: tokens.Dedup(set)}
	return s.addRecord(r)
}

// AddAt behaves like Add but stamps the record with an explicit logical
// time, which drives WindowTicks eviction. Times must be non-decreasing.
func (s *Stream) AddAt(tokenSet []uint32, at int64) (id uint64, matches []Match) {
	if at > s.tick {
		s.tick = at
	}
	return s.Add(tokenSet)
}

func (s *Stream) addRecord(r *record.Record) (uint64, []Match) {
	s.scratch = s.scratch[:0]
	s.joiner.Step(r, true, func(m local.Match) {
		s.scratch = append(s.scratch, Match{
			ID:         uint64(m.Rec.ID),
			Overlap:    m.Overlap,
			Similarity: m.Sim,
		})
	})
	s.nextID++
	s.tick++
	s.records++
	return uint64(r.ID), s.scratch
}

// Size reports the number of records currently stored (inside the window).
func (s *Stream) Size() int { return s.joiner.Size() }

// Stats reports accumulated work counters (cumulative across ordering
// refreshes).
func (s *Stream) Stats() Stats {
	c := s.joiner.Cost()
	return Stats{
		Records:    s.records,
		Stored:     s.joiner.Size(),
		Results:    s.base.Results + c.Results,
		Candidates: s.base.Candidates + c.Candidates,
		Verified:   s.base.Verified + c.Verified,
	}
}
