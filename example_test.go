package ssjoin_test

import (
	"bytes"
	"fmt"

	ssjoin "repro"
)

// The basic streaming loop: every Add returns the matches of the new
// record among everything still in the window.
func ExampleNewStream() {
	js, _ := ssjoin.NewStream(ssjoin.Config{Threshold: 0.8})
	js.Add([]uint32{1, 2, 3, 4, 5})
	_, matches := js.Add([]uint32{1, 2, 3, 4, 5})
	fmt.Printf("%d match, sim %.1f\n", len(matches), matches[0].Similarity)
	// Output: 1 match, sim 1.0
}

// Text records: tokenization and the global token ordering are handled
// internally; bootstrap with a sample for the best prefix pruning.
func ExampleNewTextStream() {
	ts, _ := ssjoin.NewTextStream(ssjoin.Config{Threshold: 0.7}, ssjoin.Words, nil)
	ts.Add("breaking news market rally continues")
	_, matches := ts.Add("Breaking News: market rally continues!")
	fmt.Println(len(matches))
	// Output: 1
}

// A count window bounds how far back matches can reach.
func ExampleConfig_windowRecords() {
	js, _ := ssjoin.NewStream(ssjoin.Config{Threshold: 0.9, WindowRecords: 1})
	js.Add([]uint32{1, 2, 3})
	js.Add([]uint32{9, 9, 9})               // pushes the first record out
	_, matches := js.Add([]uint32{1, 2, 3}) // too late
	fmt.Println(len(matches))
	// Output: 0
}

// Batch joins run the offline PPJoin-style algorithm over a static
// dataset.
func ExampleJoinBatch() {
	pairs, _ := ssjoin.JoinBatch([][]uint32{
		{1, 2, 3, 4},
		{5, 6, 7},
		{1, 2, 3, 4, 9},
	}, ssjoin.Config{Threshold: 0.75})
	for _, p := range pairs {
		fmt.Printf("%d~%d %.2f\n", p.A, p.B, p.Similarity)
	}
	// Output: 0~2 0.80
}

// Distributed execution over an in-process worker fleet with the paper's
// length-based framework.
func ExampleRunDistributed() {
	sets := make([][]uint32, 0, 200)
	for i := 0; i < 100; i++ {
		base := uint32(10 * i)
		sets = append(sets, []uint32{base, base + 1, base + 2, base + 3})
		sets = append(sets, []uint32{base, base + 1, base + 2, base + 3, base + 4})
	}
	res, _ := ssjoin.RunDistributed(sets, ssjoin.DistributedConfig{
		Config:       ssjoin.Config{Threshold: 0.8},
		Workers:      4,
		Distribution: ssjoin.LengthBased,
	})
	fmt.Println(res.Results, res.StoredCopies == res.Records)
	// Output: 100 true
}

// Two-stream joins match only across sides — the data-integration shape.
func ExampleNewBiStream() {
	b, _ := ssjoin.NewBiStream(ssjoin.Config{Threshold: 0.8})
	b.AddLeft([]uint32{1, 2, 3, 4})
	_, sameSide := b.AddLeft([]uint32{1, 2, 3, 4})
	_, crossSide := b.AddRight([]uint32{1, 2, 3, 4})
	fmt.Println(len(sameSide), len(crossSide))
	// Output: 0 2
}

// Snapshots checkpoint the window state; a restored stream continues
// exactly where the original stopped.
func ExampleStream_WriteSnapshot() {
	js, _ := ssjoin.NewStream(ssjoin.Config{Threshold: 0.8})
	js.Add([]uint32{1, 2, 3, 4, 5})

	var buf bytes.Buffer
	js.WriteSnapshot(&buf)
	restored, _ := ssjoin.RestoreStream(&buf, ssjoin.Config{Threshold: 0.8})

	_, matches := restored.Add([]uint32{1, 2, 3, 4, 5})
	fmt.Println(len(matches))
	// Output: 1
}
