package ssjoin

import (
	"fmt"
	"time"

	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/tokens"
	"repro/internal/topology"
)

// Distribution selects the record-distribution framework for distributed
// runs.
type Distribution int

// Supported frameworks. LengthBased is the paper's contribution: records
// are stored at the single worker owning their length and probe only the
// workers whose length ranges are compatible, so the index is never
// replicated and communication stays small. PrefixBased replicates records
// along prefix-token shards (the offline state of the art adapted to
// streams); BroadcastBased probes everywhere.
const (
	LengthBased Distribution = iota
	PrefixBased
	BroadcastBased
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case LengthBased:
		return "length"
	case PrefixBased:
		return "prefix"
	case BroadcastBased:
		return "broadcast"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Partitioner selects how LengthBased splits the length domain across
// workers.
type Partitioner int

// Supported partitioners. LoadAware balances the estimated local join cost
// (the paper's method); EvenLength and EvenFrequency are the baselines it
// is evaluated against.
const (
	LoadAware Partitioner = iota
	EvenLength
	EvenFrequency
)

// String implements fmt.Stringer.
func (p Partitioner) String() string {
	switch p {
	case LoadAware:
		return "load-aware"
	case EvenLength:
		return "even-length"
	case EvenFrequency:
		return "even-frequency"
	default:
		return fmt.Sprintf("Partitioner(%d)", int(p))
	}
}

// DistributedConfig parameterizes RunDistributed.
type DistributedConfig struct {
	// Config carries the join parameters (threshold, function, algorithm,
	// window, bundling).
	Config
	// Workers is the joiner parallelism (required, >= 1).
	Workers int
	// Distribution selects the framework (default LengthBased).
	Distribution Distribution
	// Partitioner selects the length-partitioning strategy for
	// LengthBased (default LoadAware).
	Partitioner Partitioner
	// SampleSize bounds how many records bootstrap the length histogram
	// for the partitioner (default 10000; the records are still joined).
	SampleSize int
	// CollectPairs returns every result pair in the summary; leave false
	// for large runs and read Results instead.
	CollectPairs bool
	// BatchSize is the transport micro-batch size between pipeline stages:
	// 0 uses the engine default, 1 ships every tuple individually (the
	// pre-batching behaviour). Result pairs are identical at any value.
	BatchSize int
	// Parallelism sizes each worker's verifier pool: P-1 helper goroutines
	// per worker fan candidate verification out across cores (Bundle
	// algorithm only). Result pairs are identical at any value — the pool
	// merges in deterministic order. 0 or 1 keeps workers single-threaded;
	// the total goroutine budget is Workers × Parallelism.
	Parallelism int
}

// DistributedResult summarizes a distributed run.
type DistributedResult struct {
	// Results counts verified pairs; Pairs holds them when requested.
	Results uint64
	Pairs   []Pair
	// Records processed and wall-clock Elapsed.
	Records uint64
	Elapsed time.Duration
	// ThroughputPerSec is Records/Elapsed.
	ThroughputPerSec float64
	// CommTuples/CommBytes count dispatcher→worker traffic.
	CommTuples, CommBytes uint64
	// StoredCopies counts index entries across workers; equal to Records
	// means no replication.
	StoredCopies uint64
	// LoadImbalance is max/mean per-worker verification work (1.0 = perfectly
	// balanced).
	LoadImbalance float64
	// LatencyMeanNs / LatencyP99Ns summarize per-record processing latency.
	LatencyMeanNs, LatencyP99Ns int64
}

// toRecords converts token multisets into positional records.
func toRecords(records [][]uint32) []*record.Record {
	recs := make([]*record.Record, len(records))
	for i, set := range records {
		cp := make([]tokens.Rank, len(set))
		copy(cp, set)
		recs[i] = &record.Record{ID: record.ID(i), Time: int64(i), Tokens: tokens.Dedup(cp)}
	}
	return recs
}

// buildStrategy materializes the configured distribution strategy,
// bootstrapping the length partition from the first SampleSize records.
func buildStrategy(cfg DistributedConfig, params filter.Params, recs []*record.Record) (dispatch.Strategy, error) {
	switch cfg.Distribution {
	case LengthBased:
		var h partition.Histogram
		for i, r := range recs {
			if i >= cfg.SampleSize {
				break
			}
			h.Add(r.Len())
		}
		var part partition.Partition
		switch cfg.Partitioner {
		case LoadAware:
			w := partition.CostModel{Params: params}.Weights(&h)
			part = partition.LoadAware(w, cfg.Workers)
		case EvenLength:
			part = partition.EvenLength(h.MaxLen(), cfg.Workers)
		case EvenFrequency:
			part = partition.EvenFrequency(&h, cfg.Workers)
		default:
			return nil, fmt.Errorf("ssjoin: unknown partitioner %d", int(cfg.Partitioner))
		}
		return dispatch.NewLengthBased(params, part), nil
	case PrefixBased:
		return dispatch.PrefixBased{Params: params}, nil
	case BroadcastBased:
		return dispatch.BroadcastBased{}, nil
	default:
		return nil, fmt.Errorf("ssjoin: unknown distribution %d", int(cfg.Distribution))
	}
}

// RunDistributed joins the record slice on an in-process worker fleet and
// returns the summary. Records are token multisets; IDs are positional.
func RunDistributed(records [][]uint32, cfg DistributedConfig) (*DistributedResult, error) {
	params, win, alg, bcfg, err := cfg.Config.build()
	if err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ssjoin: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 10000
	}

	recs := toRecords(records)
	strat, err := buildStrategy(cfg, params, recs)
	if err != nil {
		return nil, err
	}

	res, err := topology.Run(recs, topology.Config{
		Workers:      cfg.Workers,
		Strategy:     strat,
		Algorithm:    alg,
		Params:       params,
		Window:       win,
		Bundle:       bcfg,
		CollectPairs: cfg.CollectPairs,
		BatchSize:    cfg.BatchSize,
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	return summarize(res), nil
}

// summarize converts an engine result into the public summary shape.
func summarize(res *topology.Result) *DistributedResult {
	out := &DistributedResult{
		Results:          res.Results,
		Records:          res.Records,
		Elapsed:          res.Elapsed,
		ThroughputPerSec: res.Throughput().PerSecond(),
		CommTuples:       res.CommTuples,
		CommBytes:        res.CommBytes,
		StoredCopies:     res.StoredCopies,
		LatencyMeanNs:    int64(res.Latency.Mean()),
		LatencyP99Ns:     int64(res.Latency.Quantile(0.99)),
	}
	loads := make([]float64, len(res.WorkerCosts))
	for i, c := range res.WorkerCosts {
		loads[i] = float64(c.VerifySteps + c.Scanned)
	}
	var sum, max float64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum > 0 {
		out.LoadImbalance = max / (sum / float64(len(loads)))
	} else {
		out.LoadImbalance = 1
	}
	for _, p := range res.Pairs {
		out.Pairs = append(out.Pairs, Pair{A: uint64(p.First), B: uint64(p.Second), Similarity: p.Sim})
	}
	return out
}

// SideSet is one record of a two-stream join: its token multiset plus the
// stream side it belongs to (false = R/left, true = S/right).
type SideSet struct {
	Right  bool
	Tokens []uint32
}

// RunDistributedBi joins a two-sided stream (data integration: records
// match only across sides) on an in-process worker fleet. The slice is the
// interleaved arrival order; IDs in the result pairs are positions in it.
func RunDistributedBi(stream []SideSet, cfg DistributedConfig) (*DistributedResult, error) {
	params, win, alg, bcfg, err := cfg.Config.build()
	if err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ssjoin: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 10000
	}
	sets := make([][]uint32, len(stream))
	for i, s := range stream {
		sets[i] = s.Tokens
	}
	recs := toRecords(sets)
	birecs := make([]topology.BiRecord, len(recs))
	for i, r := range recs {
		birecs[i] = topology.BiRecord{Rec: r, Right: stream[i].Right}
	}
	strat, err := buildStrategy(cfg, params, recs)
	if err != nil {
		return nil, err
	}
	res, err := topology.RunBi(birecs, topology.Config{
		Workers:      cfg.Workers,
		Strategy:     strat,
		Algorithm:    alg,
		Params:       params,
		Window:       win,
		Bundle:       bcfg,
		CollectPairs: cfg.CollectPairs,
		BatchSize:    cfg.BatchSize,
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return summarize(res), nil
}
