package ssjoin

import (
	"fmt"

	"repro/internal/offline"
	"repro/internal/record"
	"repro/internal/tokens"
)

// JoinBatch computes all pairs with similarity >= the threshold within a
// static dataset — the offline AllPairs/PPJoin-style baseline. Record IDs
// in the returned pairs are positions in sets. Windows do not apply to
// batch joins; setting one is an error. Algorithm and bundle options are
// ignored (the offline join has its own, tighter, indexing strategy).
func JoinBatch(sets [][]uint32, cfg Config) ([]Pair, error) {
	params, _, _, _, err := cfg.build()
	if err != nil {
		return nil, err
	}
	if cfg.WindowRecords != 0 || cfg.WindowTicks != 0 {
		return nil, fmt.Errorf("ssjoin: windows do not apply to JoinBatch")
	}
	recs := make([]*record.Record, len(sets))
	for i, set := range sets {
		cp := make([]tokens.Rank, len(set))
		copy(cp, set)
		recs[i] = &record.Record{ID: record.ID(i), Tokens: tokens.Dedup(cp)}
	}
	pairs, _ := offline.JoinAll(recs, params)
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{A: uint64(p.A), B: uint64(p.B), Similarity: p.Sim}
	}
	return out, nil
}
