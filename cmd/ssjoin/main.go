// Command ssjoin runs a distributed streaming set-similarity self-join over
// a dataset file (see cmd/datagen for the format) or a generated workload,
// and prints the result pairs or a run summary.
//
//	ssjoin -in data.txt -tau 0.8 -workers 4 -pairs        # emit pairs
//	ssjoin -profile aol -n 20000 -tau 0.8 -dist length    # summary only
//	ssjoin -profile tweet -n 10000 -dist prefix -alg prefix
//
// With -remote, the join runs on external ssjoinworker processes over TCP
// instead of the in-process engine:
//
//	ssjoin -remote 127.0.0.1:7401,127.0.0.1:7402 -profile aol -n 100000
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bundle"
	"repro/internal/checkpoint"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/remote"
	"repro/internal/similarity"
	"repro/internal/wal"
	"repro/internal/window"
	"repro/internal/workload"

	ssjoin "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset file (token ranks per line); overrides -profile")
		profile = flag.String("profile", "uniform", "generated workload profile: aol, tweet, enron, uniform")
		n       = flag.Int("n", 10000, "records to generate when no -in")
		seed    = flag.Int64("seed", 42, "generator seed")
		tau     = flag.Float64("tau", 0.8, "similarity threshold")
		fn      = flag.String("func", "jaccard", "similarity: jaccard, cosine, dice, overlap")
		alg     = flag.String("alg", "bundle", "local algorithm: bundle, prefix, naive")
		dist    = flag.String("dist", "length", "distribution: length, prefix, broadcast")
		part    = flag.String("part", "load-aware", "length partitioner: load-aware, even-length, even-frequency")
		workers = flag.Int("workers", 4, "worker parallelism")
		par     = flag.Int("parallel", runtime.GOMAXPROCS(0), "verifier goroutines per worker (bundle algorithm, in-process runs): candidate verification fans out across cores with deterministic output; 1 disables, 0 auto-sizes from GOMAXPROCS with a measured-scaling clamp")
		kernel  = flag.String("kernel", "auto", "verification intersection kernel: auto, linear, gallop, bitset (bundle algorithm; results are identical for every choice)")
		verify  = flag.String("verify", "collect", "verification organization: collect, tree, auto (bundle algorithm, in-process runs; results are identical for every choice)")
		win     = flag.Int64("window", 0, "count window (0 = unbounded)")
		pairs   = flag.Bool("pairs", false, "print result pairs")
		asJSON  = flag.Bool("json", false, "print the run summary as JSON on stdout")
		rmt     = flag.String("remote", "", "comma-separated ssjoinworker addresses; replaces the in-process engine")
		monitor = flag.String("monitor", "", "comma-separated worker HTTP (-http) addresses: scrape /metrics, print a cluster table, exit")

		traceN     = flag.Int("trace", 0, "with -remote: sample 1 in N records for distributed tracing (0 disables; sampled records carry trace context to workers as the wire v3 annotation)")
		scrape     = flag.String("scrape", "", "with -remote -trace: comma-separated worker HTTP (-http) addresses to collect span fragments and events from")
		coordHTTP  = flag.String("http", "", "with -remote: coordinator HTTP address serving /metrics, /debug/traces (stitched), /debug/events, and /healthz")
		linger     = flag.Duration("linger", 0, "with -remote -http: keep serving (and re-collecting) the debug endpoints this long after the run")
		traces     = flag.Bool("traces", false, "with -monitor: collect /debug/traces from each address and render stitched trace trees")
		watch      = flag.Duration("watch", 0, "with -monitor: re-scrape at this interval, evaluating health rules with hysteresis (0: scrape once and exit)")
		healthSpec = flag.String("health-rules", "", "health/SLO rule file for -monitor and the coordinator /healthz (empty: built-in defaults; see docs/OBSERVABILITY.md)")

		ft        = flag.Bool("ft", false, "fault-tolerant remote run: heartbeats, retry with backoff, checkpointed resume (requires -remote)")
		retries   = flag.Int("retries", 4, "FT: consecutive failed reconnect attempts before a worker is declared dead")
		retryBase = flag.Duration("retry-base", 50*time.Millisecond, "FT: first-retry backoff delay")
		retryCap  = flag.Duration("retry-cap", 2*time.Second, "FT: backoff delay ceiling")
		hbIvl     = flag.Duration("hb-interval", time.Second, "FT: heartbeat ping interval on idle connections")
		hbTimeout = flag.Duration("hb-timeout", 0, "FT: silence span declaring a connection hung (0: 5x interval)")
		degraded  = flag.Bool("degraded", false, "FT: on a worker death, rebalance its length ranges onto survivors instead of failing (length distribution only)")
		sessionID = flag.Uint64("session-id", 0, "FT: checkpoint key for resume across coordinator restarts (0: derived from the workload seed)")

		stateDir   = flag.String("state-dir", "", "durable session state directory (manifest + ingest/results logs) making the run resumable with -resume after a coordinator crash; implies -ft, requires -remote")
		resume     = flag.Bool("resume", false, "relaunch a killed durable run from -state-dir: session configuration, input stream, and completed results all come from the state directory (-in/-profile are ignored)")
		walFsync   = flag.String("wal-fsync", "interval", "with -state-dir: WAL fsync policy: always, interval, never (acknowledged results are synced before each ack regardless)")
		walSegment = flag.Int64("wal-segment", 0, "with -state-dir: WAL segment rotation threshold in bytes (0: library default)")
	)
	flag.Parse()

	if *par == 0 {
		*par = bundle.AutoPoolSize()
	}

	if *monitor != "" {
		if err := runMonitor(*monitor, *traces, *watch, *healthSpec); err != nil {
			fatal(err)
		}
		return
	}

	if *resume && *stateDir == "" {
		fatal(errors.New("-resume requires -state-dir"))
	}
	if *stateDir != "" && *rmt == "" && !*resume {
		fatal(errors.New("-state-dir requires -remote"))
	}

	if *rmt != "" || *resume {
		var ftCfg *remote.FT
		if *ft || *stateDir != "" {
			id := *sessionID
			if id == 0 {
				id = uint64(*seed)*0x9e3779b97f4a7c15 + uint64(*n)
			}
			ftCfg = &remote.FT{
				Retry:             remote.RetryPolicy{MaxAttempts: *retries, Base: *retryBase, Cap: *retryCap, Seed: id},
				HeartbeatInterval: *hbIvl,
				HeartbeatTimeout:  *hbTimeout,
				SessionID:         id,
				Degraded:          *degraded,
			}
		}
		rules, err := loadHealthRules(*healthSpec)
		if err != nil {
			fatal(err)
		}
		oc := obsConfig{
			trace:    *traceN,
			httpAddr: *coordHTTP,
			linger:   *linger,
			rules:    rules,
			// Fold the workload identity into trace ids, shifted to leave
			// the low bits for the per-record counter, so ids stay unique
			// across coordinator restarts of the same session.
			idBase: (uint64(*seed)*0x9e3779b97f4a7c15 + uint64(*n)) << 20,
		}
		if *scrape != "" {
			oc.scrape = strings.Split(*scrape, ",")
		}
		if *resume {
			if err := runResume(*stateDir, *rmt, *pairs, ftCfg, oc, *walFsync, *walSegment); err != nil {
				fatal(err)
			}
			return
		}
		recs, err := loadRecords(*in, *profile, *n, *seed)
		if err != nil {
			fatal(err)
		}
		if *stateDir != "" {
			pol, err := wal.ParseSyncPolicy(*walFsync)
			if err != nil {
				fatal(err)
			}
			ftCfg.Durable = &remote.Durable{
				StateDir:     *stateDir,
				Sync:         pol,
				SegmentBytes: *walSegment,
				Workers:      strings.Split(*rmt, ","),
			}
		}
		if err := runRemote(*rmt, recs, *tau, *fn, *alg, *dist, *win, *pairs, ftCfg, oc); err != nil {
			fatal(err)
		}
		return
	}

	recs, err := loadRecords(*in, *profile, *n, *seed)
	if err != nil {
		fatal(err)
	}
	sets := make([][]uint32, len(recs))
	for i, r := range recs {
		sets[i] = r.Tokens
	}

	cfg := ssjoin.DistributedConfig{
		Workers:      *workers,
		CollectPairs: *pairs,
		Parallelism:  *par,
	}
	cfg.Threshold = *tau
	cfg.WindowRecords = *win
	cfg.Kernel = *kernel
	cfg.VerifyMode = *verify
	if cfg.Function, err = parseFunc(*fn); err != nil {
		fatal(err)
	}
	if cfg.Algorithm, err = parseAlg(*alg); err != nil {
		fatal(err)
	}
	if cfg.Distribution, err = parseDist(*dist); err != nil {
		fatal(err)
	}
	if cfg.Partitioner, err = parsePart(*part); err != nil {
		fatal(err)
	}

	res, err := ssjoin.RunDistributed(sets, cfg)
	if err != nil {
		fatal(err)
	}

	if *pairs {
		for _, p := range res.Pairs {
			fmt.Printf("%d %d %.4f\n", p.A, p.B, p.Similarity)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := *res
		if !*pairs {
			out.Pairs = nil
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Fprintf(os.Stderr,
		"records=%d results=%d elapsed=%v throughput=%.0f rec/s comm=%d tuples (%d bytes) stored=%d imbalance=%.2f latency(mean/p99)=%dns/%dns\n",
		res.Records, res.Results, res.Elapsed, res.ThroughputPerSec,
		res.CommTuples, res.CommBytes, res.StoredCopies, res.LoadImbalance,
		res.LatencyMeanNs, res.LatencyP99Ns)
}

func loadRecords(path, profile string, n int, seed int64) ([]*record.Record, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.Load(f)
	}
	prof, err := workload.ProfileByName(profile, seed)
	if err != nil {
		return nil, err
	}
	return workload.NewGenerator(prof).Generate(n), nil
}

func parseFunc(s string) (ssjoin.Similarity, error) {
	switch s {
	case "jaccard":
		return ssjoin.Jaccard, nil
	case "cosine":
		return ssjoin.Cosine, nil
	case "dice":
		return ssjoin.Dice, nil
	case "overlap":
		return ssjoin.Overlap, nil
	}
	return 0, fmt.Errorf("unknown similarity %q", s)
}

func parseAlg(s string) (ssjoin.Algorithm, error) {
	switch s {
	case "bundle":
		return ssjoin.Bundle, nil
	case "prefix":
		return ssjoin.Prefix, nil
	case "naive":
		return ssjoin.Naive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func parseDist(s string) (ssjoin.Distribution, error) {
	switch s {
	case "length":
		return ssjoin.LengthBased, nil
	case "prefix":
		return ssjoin.PrefixBased, nil
	case "broadcast":
		return ssjoin.BroadcastBased, nil
	}
	return 0, fmt.Errorf("unknown distribution %q", s)
}

func parsePart(s string) (ssjoin.Partitioner, error) {
	switch s {
	case "load-aware":
		return ssjoin.LoadAware, nil
	case "even-length":
		return ssjoin.EvenLength, nil
	case "even-frequency":
		return ssjoin.EvenFrequency, nil
	}
	return 0, fmt.Errorf("unknown partitioner %q", s)
}

// runRemote executes the join on external workers over TCP. Ctrl-C cancels
// the run: dials abort and worker connections close. With ftCfg set the
// run goes through the fault-tolerant coordinator: each worker is dialed
// (and re-dialed) on demand instead of up front. oc configures the
// observability surface (tracing, event journal, coordinator debug
// endpoints); the zero value turns all of it off.
func runRemote(addrList string, recs []*record.Record, tau float64, fn, alg, dist string, win int64, pairs bool, ftCfg *remote.FT, oc obsConfig) error {
	addrs := strings.Split(addrList, ",")

	f, err := similarity.ParseFunc(fn)
	if err != nil {
		return err
	}
	a, err := local.ParseAlgorithm(alg)
	if err != nil {
		return err
	}
	params := filter.Params{Func: f, Threshold: tau}
	sess := remote.Session{
		Params:    params,
		Algorithm: a,
		Strategy:  dist,
		Bundle:    bundle.Config{},
	}
	if win > 0 {
		sess.Window = window.Count{N: win}
	}
	if dist == "length" {
		var h partition.Histogram
		for _, r := range recs {
			h.Add(r.Len())
		}
		w := partition.CostModel{Params: params}.Weights(&h)
		sess.Bounds = partition.LoadAware(w, len(addrs)).Bounds
	}
	return execRemote(addrs, sess, recs, pairs, ftCfg, oc)
}

// runResume relaunches a durable session purely from its state directory:
// the manifest supplies the configuration, identity, and worker fleet,
// the ingest log supplies the record stream, and the results log seeds
// the coordinator's dedup so completed work is not re-reported. addrList,
// when non-empty, overrides the manifest's worker addresses (a moved
// fleet).
func runResume(stateDir, addrList string, pairs bool, ftCfg *remote.FT, oc obsConfig, fsync string, segBytes int64) error {
	m, err := checkpoint.LoadManifest(filepath.Join(stateDir, checkpoint.ManifestPath))
	if err != nil {
		return err
	}
	sess, err := remote.SessionFromHello(m.Hello)
	if err != nil {
		return err
	}
	recs, err := remote.ReadIngestLog(stateDir)
	if err != nil {
		return err
	}
	addrs := m.Workers
	if addrList != "" {
		addrs = strings.Split(addrList, ",")
	}
	if len(addrs) == 0 {
		return errors.New("resume: manifest lists no workers; pass -remote")
	}
	pol, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		return err
	}
	ftCfg.SessionID = m.SessionID
	ftCfg.Retry.Seed = m.SessionID
	ftCfg.Durable = &remote.Durable{
		StateDir:     stateDir,
		Sync:         pol,
		SegmentBytes: segBytes,
		Resume:       true,
		Workers:      addrs,
	}
	// Trace ids must stay unique across incarnations of one session.
	oc.idBase = m.SessionID << 20
	fmt.Fprintf(os.Stderr, "remote: resuming session %016x: %d records in ingest log, %d workers\n",
		m.SessionID, len(recs), len(addrs))
	return execRemote(addrs, sess, recs, pairs, ftCfg, oc)
}

// execRemote is the shared tail of runRemote and runResume: dial, run,
// report.
func execRemote(addrs []string, sess remote.Session, recs []*record.Record, pairs bool, ftCfg *remote.FT, oc obsConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	co := newCoordObs(oc)

	opts := remote.Opts{CollectPairs: pairs, Tracer: co.tracer, Journal: co.journal}
	var err error
	var sum *remote.RunSummary
	if ftCfg != nil {
		dialer := func(ctx context.Context, task int) (io.ReadWriteCloser, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addrs[task])
		}
		sum, err = remote.RunFT(ctx, dialer, len(addrs), sess, recs, opts, *ftCfg)
	} else {
		var conns []net.Conn
		conns, err = remote.Dial(ctx, addrs, 5*time.Second)
		if err != nil {
			return err
		}
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		rws := make([]io.ReadWriter, len(conns))
		for i, c := range conns {
			rws[i] = c
		}
		sum, err = remote.RunWithOpts(ctx, rws, sess, recs, opts)
	}
	if err != nil {
		return err
	}
	if pairs {
		for _, p := range sum.Pairs {
			fmt.Printf("%d %d %.4f\n", p.First, p.Second, p.Sim)
		}
	}
	fmt.Fprintf(os.Stderr,
		"remote: workers=%d records=%d results=%d elapsed=%v throughput=%.0f rec/s sent=%d tuples (%d bytes)\n",
		len(addrs), sum.Records, sum.Results, sum.Elapsed,
		float64(sum.Records)/sum.Elapsed.Seconds(), sum.TuplesSent, sum.BytesSent)
	if ftCfg != nil && (sum.Retries > 0 || sum.Reconnects > 0 || sum.Degraded) {
		fmt.Fprintf(os.Stderr,
			"remote: ft: retries=%d reconnects=%d replayed=%d degraded=%v dead=%v\n",
			sum.Retries, sum.Reconnects, sum.ReplayedRecords, sum.Degraded, sum.DeadWorkers)
	}
	if co.tracer.Enabled() || len(oc.scrape) > 0 {
		co.report(ctx, os.Stderr)
	}
	co.finish(ctx)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssjoin:", err)
	os.Exit(1)
}
