// Coordinator-side observability for ssjoin: the -trace/-scrape/-http
// surface of remote runs (distributed tracing, event journal, coordinator
// debug endpoints) and the -monitor fleet view with -watch health-rule
// evaluation and -traces stitched-trace rendering. Everything here is
// off unless the matching flag is set; an untraced remote run builds no
// tracer and dispatches byte-identical wire traffic.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/remote"
)

// maxRenderedTraces bounds the trace trees printed after a run or per
// -monitor round so a 1/8-sampled big run doesn't flood the terminal.
const maxRenderedTraces = 5

// obsConfig carries the observability flags into runRemote.
type obsConfig struct {
	trace    int      // sample 1 in N dispatched records (0: tracing off)
	idBase   uint64   // trace-id base folding the session identity in
	scrape   []string // worker HTTP addresses for fragment/event collection
	httpAddr string   // coordinator debug server address ("": none)
	linger   time.Duration
	rules    []obs.HealthRule
}

// loadHealthRules reads a rule file, or returns the built-in defaults for
// an empty path.
func loadHealthRules(path string) ([]obs.HealthRule, error) {
	if path == "" {
		return obs.DefaultHealthRules(), nil
	}
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obs.ParseHealthRules(string(text))
}

// coordObs is the coordinator-side observability state of one remote run:
// the tracer minting trace ids, the journal of coordinator events, the
// stitcher assembling cluster-wide traces from worker scrapes, and the
// optional debug HTTP server exposing all of it.
type coordObs struct {
	cfg      obsConfig
	tracer   *obs.Tracer
	journal  *obs.Journal
	stitcher *obs.Stitcher
	health   *obs.HealthEngine
	srv      *http.Server
	srvDone  chan struct{}
	prev     []remote.WorkerStatus
}

// newCoordObs builds the run's observability state and, when cfg.httpAddr
// is set, starts the coordinator debug server. Returns a value usable even
// when every feature is off (all methods no-op gracefully).
func newCoordObs(cfg obsConfig) *coordObs {
	o := &coordObs{cfg: cfg, journal: obs.NewJournal(0)}
	if cfg.trace > 0 {
		o.tracer = obs.NewTracer(cfg.trace, 256)
		o.tracer.SetIDBase(cfg.idBase)
		o.stitcher = obs.NewStitcher(256)
	}
	o.health = obs.NewHealthEngine(cfg.rules, o.journal)
	if cfg.httpAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		o.journal.RegisterMetrics(reg)
		mux := http.NewServeMux()
		obs.AttachDebugOpts(mux, obs.DebugOptions{
			Registry: reg,
			Tracer:   o.tracer,
			Stitcher: o.stitcher,
			Journal:  o.journal,
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Query().Get("detail") == "" {
				fmt.Fprintln(w, "ok")
				return
			}
			st := o.health.Status()
			w.Header().Set("Content-Type", "application/json")
			if !st.Healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(st) //nolint:errcheck — best effort over HTTP
		})
		o.srv = &http.Server{Addr: cfg.httpAddr, Handler: mux}
		o.srvDone = make(chan struct{})
		go func() {
			defer close(o.srvDone)
			if err := o.srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "ssjoin: debug server:", err)
			}
		}()
	}
	return o
}

// collect runs one observation round: pull trace fragments from the
// scrape targets into the stitcher and evaluate health rules over fresh
// worker snapshots. Failed scrapes degrade to stale carry-forward rows
// rather than aborting the round.
func (o *coordObs) collect(ctx context.Context) {
	if len(o.cfg.scrape) == 0 {
		return
	}
	if o.stitcher != nil {
		for addr, err := range remote.CollectTraces(ctx, nil, o.stitcher, o.tracer, o.cfg.scrape, 0) {
			fmt.Fprintf(os.Stderr, "ssjoin: trace scrape %s: %v\n", addr, err)
		}
	}
	cur := remote.ScrapeCluster(ctx, nil, o.cfg.scrape, 0)
	merged := remote.MergeStatuses(o.prev, cur)
	o.prev = merged
	var exemplar uint64
	if rs := o.tracer.Recent(); len(rs) > 0 {
		exemplar = rs[0].ID
	}
	for _, st := range merged {
		o.health.Eval(st.Addr, remote.SignalsFrom(st), exemplar)
	}
	o.health.Eval("cluster", remote.ClusterSignals(merged), exemplar)
}

// report collects once more, then prints the stitched traces and the
// merged cluster event timeline to w.
func (o *coordObs) report(ctx context.Context, w io.Writer) {
	o.collect(ctx)
	if o.stitcher != nil {
		snap := o.stitcher.Snapshot()
		fmt.Fprintf(w, "traces: sampled=%d stitched=%d orphan-fragments=%d\n",
			o.tracer.Sampled(), len(snap.Traces), snap.OrphanFragments)
		for i, tr := range snap.Traces {
			if i == maxRenderedTraces {
				fmt.Fprintf(w, "... %d more traces on /debug/traces\n", len(snap.Traces)-i)
				break
			}
			remote.RenderTraceTree(w, tr) //nolint:errcheck — terminal output
		}
	}
	events := remote.CollectEvents(ctx, nil, o.journal.Snapshot(), o.cfg.scrape, 0)
	if len(events) > 0 {
		fmt.Fprintf(w, "events: %d across %d sources\n", len(events), 1+len(o.cfg.scrape))
		printEvents(w, events)
	}
}

// finish serves the linger window (re-collecting so late scrapers see
// fresh stitched traces and health state), then shuts the debug server
// down.
func (o *coordObs) finish(ctx context.Context) {
	if o.srv != nil && o.cfg.linger > 0 {
		fmt.Fprintf(os.Stderr, "ssjoin: serving debug endpoints on %s for %s\n",
			o.cfg.httpAddr, o.cfg.linger)
		deadline := time.After(o.cfg.linger)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
	linger:
		for {
			select {
			case <-ctx.Done():
				break linger
			case <-deadline:
				break linger
			case <-tick.C:
				o.collect(ctx)
			}
		}
	}
	if o.srv != nil {
		//lint:ignore ctxcheck shutdown must run even after Ctrl-C cancels the run ctx
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		o.srv.Shutdown(sctx) //nolint:errcheck
		<-o.srvDone
	}
}

// printEvents renders a merged event timeline, one line per event.
func printEvents(w io.Writer, events []obs.Event) {
	for _, ev := range events {
		ts := time.Unix(0, ev.UnixNs).Format("15:04:05.000")
		trace := ""
		if ev.TraceID != 0 {
			trace = fmt.Sprintf(" trace=%016x", ev.TraceID)
		}
		fmt.Fprintf(w, "  %s %-14s %-12s %s: %s%s\n",
			ts, ev.Source, ev.Type, ev.Component, ev.Msg, trace)
	}
}

// printHealth renders the firing subset of a health status (or an all-clear
// line) for the -monitor loop.
func printHealth(w io.Writer, st obs.HealthStatus) {
	if st.Healthy {
		fmt.Fprintf(w, "health: ok (%d rule states tracked)\n", len(st.Rules))
		return
	}
	fmt.Fprintf(w, "health: %d firing\n", st.Firing)
	for _, r := range st.Rules {
		if !r.Firing {
			continue
		}
		line := fmt.Sprintf("  FIRING %s on %s: %s %s %g (value %.3g, since %s)",
			r.Rule, r.Target, r.Signal, r.Op, r.Threshold, r.Value,
			time.Unix(0, r.SinceUnixNs).Format("15:04:05"))
		if r.ExemplarTraceID != 0 {
			line += fmt.Sprintf(" exemplar trace %016x", r.ExemplarTraceID)
		}
		fmt.Fprintln(w, line)
	}
}

// runMonitor scrapes each worker's /metrics endpoint (the HTTP address
// given to ssjoinworker -http, not the TCP join port) and renders the
// cluster status table. With -watch it loops, carrying forward the last
// good reading of any worker whose scrape fails (marked stale) and
// evaluating health rules with hysteresis across rounds; -traces adds
// stitched trace trees assembled from every address's /debug/traces.
func runMonitor(addrList string, showTraces bool, watch time.Duration, rulesPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	addrs := strings.Split(addrList, ",")
	rules, err := loadHealthRules(rulesPath)
	if err != nil {
		return err
	}
	engine := obs.NewHealthEngine(rules, obs.NewJournal(0))
	var prev []remote.WorkerStatus
	for {
		cur := remote.ScrapeCluster(ctx, nil, addrs, 0)
		merged := remote.MergeStatuses(prev, cur)
		prev = merged
		if watch > 0 {
			fmt.Printf("-- %s --\n", time.Now().Format(time.RFC3339))
		}
		if err := remote.ClusterTable(os.Stdout, merged); err != nil {
			return err
		}
		for _, st := range merged {
			engine.Eval(st.Addr, remote.SignalsFrom(st), 0)
		}
		engine.Eval("cluster", remote.ClusterSignals(merged), 0)
		printHealth(os.Stdout, engine.Status())
		if showTraces {
			renderScrapedTraces(ctx, os.Stdout, addrs)
		}
		if watch <= 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(watch):
		}
	}
}

// renderScrapedTraces pulls /debug/traces from every address and prints
// trace trees: pre-stitched traces from any coordinator endpoint directly,
// plus whatever can be assembled here from scraped roots and fragments.
func renderScrapedTraces(ctx context.Context, w io.Writer, addrs []string) {
	st := obs.NewStitcher(256)
	var pre []obs.StitchedTrace
	for _, addr := range addrs {
		doc, err := remote.ScrapeTraces(ctx, nil, addr)
		if err != nil {
			fmt.Fprintf(w, "traces %s: %v\n", addr, err)
			continue
		}
		for _, tr := range doc.Traces {
			st.AddRoot(tr)
		}
		for _, f := range doc.Fragments {
			st.AddFragment(addr, f)
		}
		if doc.Stitched != nil {
			pre = append(pre, doc.Stitched.Traces...)
		}
	}
	local := st.Snapshot()
	seen := map[uint64]bool{}
	rendered := 0
	for _, tr := range append(pre, local.Traces...) {
		if seen[tr.ID] || rendered == maxRenderedTraces {
			continue
		}
		seen[tr.ID] = true
		rendered++
		remote.RenderTraceTree(w, tr) //nolint:errcheck — terminal output
	}
	if rendered == 0 {
		fmt.Fprintln(w, "traces: none collected")
	}
}
