// Command datagen materializes a synthetic workload to a file in the plain
// text exchange format (one record per line, space-separated token ranks).
//
//	datagen -profile aol -n 100000 -seed 7 -o aol.txt
//	datagen -profile tweet -n 50000 > tweets.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		profile = flag.String("profile", "uniform", "workload profile: aol, tweet, enron, uniform")
		n       = flag.Int("n", 10000, "number of records")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	prof, err := workload.ProfileByName(*profile, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	recs := workload.NewGenerator(prof).Generate(*n)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.Save(w, recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s records\n", len(recs), prof.Name)
}
