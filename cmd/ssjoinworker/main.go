// Command ssjoinworker serves join worker sessions over TCP. Start one per
// machine (or per core), then point the coordinator at them:
//
//	ssjoinworker -listen :7401 &
//	ssjoinworker -listen :7402 &
//	ssjoin -remote 127.0.0.1:7401,127.0.0.1:7402 -profile aol -n 100000
//
// Each coordinator connection is one self-contained join session carrying
// its own configuration, so a worker can serve many sessions concurrently
// and needs no local configuration at all.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// sessions drain, and the monitor server (if any) shuts down cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bundle"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/similarity"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen     = flag.String("listen", ":7401", "TCP address to listen on")
		httpAddr   = flag.String("http", "", "optional HTTP address serving /healthz, /stats, /metrics, /debug/traces, /debug/events, and /debug/pprof")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for fault-tolerant session checkpoints (empty disables persistence; FT sessions then resume from scratch)")
		ckptIvl    = flag.Duration("checkpoint-interval", 0, "minimum spacing between periodic window checkpoints (0: checkpoint only on unclean session exit)")
		par        = flag.Int("parallel", runtime.GOMAXPROCS(0), "verifier goroutines per session (bundle algorithm): candidate verification fans out across cores with deterministic output; 1 disables, 0 auto-sizes from GOMAXPROCS with a measured-scaling clamp")
		kernel     = flag.String("kernel", "auto", "verification intersection kernel: auto, linear, gallop, bitset (bundle algorithm; worker-local, results are identical for every choice)")
		verify     = flag.String("verify", "collect", "verification organization: collect, tree, auto (bundle algorithm; worker-local, results are identical for every choice)")
		healthSpec = flag.String("health-rules", "", "health/SLO rule file evaluated against the worker's own signals (empty: built-in defaults; see docs/OBSERVABILITY.md)")
		healthIvl  = flag.Duration("health-interval", 5*time.Second, "health rule evaluation period (requires -http)")
	)
	flag.Parse()
	kern, err := similarity.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		return 1
	}
	vm, err := bundle.ParseVerifyMode(*verify)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		return 1
	}
	if *par == 0 {
		*par = bundle.AutoPoolSize()
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
			return 1
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		return 1
	}

	var mon remote.Monitor
	frags := obs.NewFragments(0)
	journal := obs.NewJournal(0)
	monDone := make(chan struct{})
	if *httpAddr != "" {
		rules := obs.DefaultHealthRules()
		if *healthSpec != "" {
			text, err := os.ReadFile(*healthSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
				return 1
			}
			if rules, err = obs.ParseHealthRules(string(text)); err != nil {
				fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
				return 1
			}
		}
		reg := obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		mon.RegisterMetrics(reg)
		frags.RegisterMetrics(reg)
		journal.RegisterMetrics(reg)
		mon.Health = obs.NewHealthEngine(rules, journal)
		mux := http.NewServeMux()
		mux.Handle("/healthz", mon.Handler())
		mux.Handle("/stats", mon.Handler())
		obs.AttachDebugOpts(mux, obs.DebugOptions{
			Registry:  reg,
			Fragments: frags,
			Journal:   journal,
		})
		srv := &http.Server{Addr: *httpAddr, Handler: mux}
		healthDone := make(chan struct{})
		go func() {
			defer close(healthDone)
			tick := time.NewTicker(*healthIvl)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					mon.Health.Eval("self", mon.HealthSignals(), mon.LastTraceID.Load())
				}
			}
		}()
		go func() {
			defer close(monDone)
			log.Printf("ssjoinworker: monitoring on http://%s/stats", *httpAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("ssjoinworker: monitor server: %v", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx) //nolint:errcheck
			<-monDone
			<-healthDone
		}()
	} else {
		close(monDone)
	}

	log.Printf("ssjoinworker: listening on %s", ln.Addr())
	if *ckptDir != "" {
		log.Printf("ssjoinworker: checkpointing to %s (interval %s)", *ckptDir, *ckptIvl)
	}
	err = remote.ServeWorkerOpts(ctx, ln, remote.WorkerOpts{
		Mon:                &mon,
		Logf:               log.Printf,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptIvl,
		Parallelism:        *par,
		Kernel:             similarity.KernelConfig{Mode: kern},
		VerifyMode:         vm,
		Frags:              frags,
		Journal:            journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		return 1
	}
	log.Printf("ssjoinworker: shut down cleanly")
	return 0
}
