// Command ssjoinworker serves join worker sessions over TCP. Start one per
// machine (or per core), then point the coordinator at them:
//
//	ssjoinworker -listen :7401 &
//	ssjoinworker -listen :7402 &
//	ssjoin -remote 127.0.0.1:7401,127.0.0.1:7402 -profile aol -n 100000
//
// Each coordinator connection is one self-contained join session carrying
// its own configuration, so a worker can serve many sessions concurrently
// and needs no local configuration at all.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/remote"
)

func main() {
	var (
		listen   = flag.String("listen", ":7401", "TCP address to listen on")
		httpAddr = flag.String("http", "", "optional HTTP address serving /healthz and /stats")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		os.Exit(1)
	}
	var mon remote.Monitor
	if *httpAddr != "" {
		go func() {
			log.Printf("ssjoinworker: monitoring on http://%s/stats", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mon.Handler()); err != nil {
				log.Printf("ssjoinworker: monitor server: %v", err)
			}
		}()
	}
	log.Printf("ssjoinworker: listening on %s", ln.Addr())
	if err := remote.ServeWorkerMonitored(ln, log.Printf, &mon); err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinworker:", err)
		os.Exit(1)
	}
}
