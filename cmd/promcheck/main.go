// Command promcheck validates Prometheus text exposition (format 0.0.4) as
// served by the /metrics endpoints of ssjoinworker and ssjoinbench. It reads
// a file argument or stdin, parses it with the same parser the coordinator
// uses for cluster scrapes (obs.ParseExposition), and exits non-zero on
// malformed input. CI pipes a live worker scrape through it to keep the
// exposition contract honest without a Prometheus dependency.
//
//	curl -s http://worker:8080/metrics | promcheck
//	promcheck -min-series 5 scrape.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		minSeries = flag.Int("min-series", 1, "fail unless at least this many samples parse")
		verbose   = flag.Bool("v", false, "list parsed families")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			return 1
		}
		defer f.Close()
		r = f
		name = flag.Arg(0)
	}

	pm, err := obs.ParseExposition(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		return 1
	}
	samples := 0
	names := make([]string, 0, len(pm))
	for n, fam := range pm {
		samples += len(fam.Samples)
		names = append(names, n)
	}
	if samples < *minSeries {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d samples, want at least %d\n",
			name, samples, *minSeries)
		return 1
	}
	if *verbose {
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s: %d sample(s)\n", n, len(pm[n].Samples))
		}
	}
	fmt.Printf("promcheck: %s: ok (%d families, %d samples)\n", name, len(pm), samples)
	return 0
}
