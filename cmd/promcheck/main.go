// Command promcheck validates Prometheus text exposition (format 0.0.4) as
// served by the /metrics endpoints of ssjoinworker and ssjoinbench. It reads
// a file argument or stdin, parses it with the same parser the coordinator
// uses for cluster scrapes (obs.ParseExposition), and exits non-zero on
// malformed input. CI pipes a live worker scrape through it to keep the
// exposition contract honest without a Prometheus dependency.
//
//	curl -s http://worker:8080/metrics | promcheck
//	promcheck -min-series 5 scrape.txt
//	promcheck -selftest
//
// -selftest skips the input and instead drives the writer/parser pair
// through its own hardest cases: escaped label values, non-finite sample
// values, and exemplar suffixes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		minSeries = flag.Int("min-series", 1, "fail unless at least this many samples parse")
		verbose   = flag.Bool("v", false, "list parsed families")
		selftest  = flag.Bool("selftest", false, "round-trip escaped labels, non-finite values, and exemplars through the writer/parser pair instead of reading input")
	)
	flag.Parse()

	if *selftest {
		return runSelftest()
	}

	var r io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			return 1
		}
		defer f.Close()
		r = f
		name = flag.Arg(0)
	}

	pm, err := obs.ParseExposition(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		return 1
	}
	samples := 0
	names := make([]string, 0, len(pm))
	for n, fam := range pm {
		samples += len(fam.Samples)
		names = append(names, n)
	}
	if samples < *minSeries {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %d samples, want at least %d\n",
			name, samples, *minSeries)
		return 1
	}
	if *verbose {
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s: %d sample(s)\n", n, len(pm[n].Samples))
		}
	}
	fmt.Printf("promcheck: %s: ok (%d families, %d samples)\n", name, len(pm), samples)
	return 0
}

// runSelftest round-trips the exposition edge cases the coordinator's
// cluster scrape depends on. Each check writes through the registry and
// reads back through obs.ParseExposition — the same pair of code paths a
// live scrape exercises.
func runSelftest() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "promcheck: selftest: "+format+"\n", args...)
		return 1
	}

	// Escaped label values: backslash, quote, newline, and exposition
	// syntax bytes inside values.
	nasty := []string{`back\slash`, `qu"ote`, "new\nline", `brace}inside`, `hash#inside`, `comma,inside`}
	reg := obs.NewRegistry()
	vec := reg.GaugeVec("selftest_gauge", "escape round-trip", "case")
	for i, v := range nasty {
		vec.With(v).Set(float64(i + 1)) // obscheck: bounded — fixed selftest table
	}
	h := reg.Histogram("selftest_seconds", "exemplar round-trip")
	h.Observe(50 * time.Millisecond)
	reg.ExemplarsFor("selftest_seconds").Observe(0.050, 0xfeedface)

	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		return fail("write: %v", err)
	}
	pm, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		return fail("parse of own output: %v\n%s", err, sb.String())
	}
	got := map[string]float64{}
	for _, s := range pm["selftest_gauge"].Samples {
		got[s.Labels["case"]] = s.Value
	}
	for i, v := range nasty {
		if got[v] != float64(i+1) {
			return fail("label %q round-tripped to %v, want %d", v, got[v], i+1)
		}
	}
	var exemplarOK bool
	for _, s := range pm["selftest_seconds_bucket"].Samples {
		if s.Exemplar != nil && s.Exemplar.TraceID() == 0xfeedface && s.Exemplar.Value == 0.050 {
			exemplarOK = true
		}
	}
	if !exemplarOK {
		return fail("exemplar lost in round trip:\n%s", sb.String())
	}

	// Non-finite sample values in both spellings of +Inf.
	pm, err = obs.ParseExposition(strings.NewReader("pos +Inf\nalso_pos Inf\nneg -Inf\nnan NaN\n"))
	if err != nil {
		return fail("non-finite parse: %v", err)
	}
	if !math.IsInf(pm.Value("pos", 0), 1) || !math.IsInf(pm.Value("also_pos", 0), 1) ||
		!math.IsInf(pm.Value("neg", 0), -1) || !math.IsNaN(pm.Value("nan", 0)) {
		return fail("non-finite values mangled")
	}

	// The parser must still reject malformed lines.
	for _, bad := range []string{`m{l="unterminated} 1`, `m{l=unquoted} 1`, `m 1 # notbrace 2`} {
		if _, err := obs.ParseExposition(strings.NewReader(bad + "\n")); err == nil {
			return fail("accepted malformed line %q", bad)
		}
	}

	fmt.Println("promcheck: selftest: ok (escaped labels, non-finite values, exemplars)")
	return 0
}
