// Command ssjoinbench regenerates the paper's tables and figures.
//
//	ssjoinbench                 # run everything at default scale
//	ssjoinbench -exp E1         # one experiment
//	ssjoinbench -records 50000 -workers 8 -seed 7
//	ssjoinbench -batch 1        # disable transport micro-batching
//	ssjoinbench -json out.json  # machine-readable results
//	ssjoinbench -http :8080     # live /metrics, /debug/traces, /debug/pprof
//	ssjoinbench -trace 1024     # sample one tuple lineage per 1024 tuples
//	ssjoinbench -list           # inventory
//
// Output is aligned text, one table per experiment, matching the
// per-experiment index in EXPERIMENTS.md. With -json, the same tables are
// additionally written to a JSON file together with per-experiment wall
// time, allocation counts, and a metrics-registry snapshot, for benchmark
// tracking across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bundle"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/similarity"
)

// runRecord is one experiment's table plus measurement metadata, the unit
// of the -json report.
type runRecord struct {
	ID              string               `json:"id"`
	Title           string               `json:"title"`
	ElapsedSec      float64              `json:"elapsed_sec"`
	AllocsPerRecord float64              `json:"allocs_per_record"`
	Columns         []string             `json:"columns"`
	Rows            [][]string           `json:"rows"`
	Notes           string               `json:"notes,omitempty"`
	Metrics         []obs.MetricSnapshot `json:"metrics,omitempty"`
}

// jsonReport is the top-level -json document. GOMAXPROCS, NumCPU and
// Parallel pin the machine's core budget and the verifier-pool setting
// each run used, so BENCH_*.json entries stay comparable across machines.
// DegenerateParallel marks runs that asked for a verifier pool the
// machine cannot actually parallelize — their parallel numbers measure
// pool overhead, not speedup, and must not be quoted as scaling results.
type jsonReport struct {
	Records            int         `json:"records"`
	Workers            int         `json:"workers"`
	Seed               int64       `json:"seed"`
	Batch              int         `json:"batch"`
	GOMAXPROCS         int         `json:"gomaxprocs"`
	NumCPU             int         `json:"num_cpu"`
	Parallel           int         `json:"parallel"`
	ParallelAuto       bool        `json:"parallel_auto,omitempty"`
	Kernel             string      `json:"kernel"`
	VerifyMode         string      `json:"verify_mode"`
	DegenerateParallel bool        `json:"degenerate_parallel"`
	TraceEvery         int         `json:"trace_every,omitempty"`
	TracesSampled      uint64      `json:"traces_sampled,omitempty"`
	Experiments        []runRecord `json:"experiments"`
}

func main() {
	var (
		expID   = flag.String("exp", "", "experiment ID to run (default: all)")
		records = flag.Int("records", 0, "records per run (default: experiment default)")
		workers = flag.Int("workers", 0, "worker parallelism (default: experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (default: experiment default)")
		batch   = flag.Int("batch", 0, "transport batch size (0 = engine default, 1 = unbatched)")
		par     = flag.Int("parallel", 1, "verifier goroutines per worker (bundle algorithm): >1 fans candidate verification across cores with deterministic results; 0 auto-sizes from GOMAXPROCS with a measured-scaling clamp")
		kernel  = flag.String("kernel", "auto", "verification intersection kernel: auto, linear, gallop, bitset (bundle algorithm; results are identical for every choice)")
		verify  = flag.String("verify", "collect", "verification organization: collect, tree, auto (bundle algorithm; results are identical for every choice)")
		adaptML = flag.Bool("adaptive-minlen", false, "adapt the bitset packing cutoff to the observed kernel mix (auto kernel only; never changes results)")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text or csv")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		jsonOut = flag.String("json", "", "also write machine-readable results to this file")
		httpAd  = flag.String("http", "", "serve /metrics, /debug/traces, and /debug/pprof on this address during the run")
		traceN  = flag.Int("trace", 0, "sample one tuple lineage every N tuples (0 = tracing off)")
		minP    = flag.Int("min-procs", 0, "refuse to run when GOMAXPROCS is below this (CI guard: parallel sweeps on a single core measure nothing)")
	)
	flag.Parse()

	if *minP > 0 && runtime.GOMAXPROCS(0) < *minP {
		fmt.Fprintf(os.Stderr, "ssjoinbench: GOMAXPROCS=%d below -min-procs %d; a parallel sweep needs real cores\n",
			runtime.GOMAXPROCS(0), *minP)
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.DefaultScale()
	if *records > 0 {
		scale.Records = *records
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *batch > 0 {
		scale.Batch = *batch
	}
	// -parallel=0 asks for auto-sizing: GOMAXPROCS capped and clamped by
	// bundle.AutoPoolSize's measured-scaling probe. The chosen value is
	// what lands in the JSON report, with parallel_auto marking it.
	autoPar := *par == 0
	if autoPar {
		*par = bundle.AutoPoolSize()
		fmt.Fprintf(os.Stderr, "ssjoinbench: -parallel=0 auto-sized verifier pool to %d (gomaxprocs=%d)\n",
			*par, runtime.GOMAXPROCS(0))
	}
	if *par > 1 {
		scale.Parallel = *par
	}
	kern, err := similarity.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinbench:", err)
		os.Exit(1)
	}
	scale.Kernel = similarity.KernelConfig{Mode: kern, AdaptiveMinLen: *adaptML}
	if scale.VerifyMode, err = bundle.ParseVerifyMode(*verify); err != nil {
		fmt.Fprintln(os.Stderr, "ssjoinbench:", err)
		os.Exit(1)
	}

	// A verifier pool larger than the core budget cannot parallelize
	// anything: every P>1 row degenerates to sequential throughput plus
	// pool overhead. Run anyway (the parity columns are still meaningful)
	// but say so loudly and stamp the JSON so downstream tooling never
	// quotes these numbers as scaling results.
	degenerate := *par > 1 && (runtime.GOMAXPROCS(0) == 1 || runtime.NumCPU() == 1)
	if degenerate {
		fmt.Fprintf(os.Stderr,
			"ssjoinbench: WARNING: -parallel %d requested but GOMAXPROCS=%d NumCPU=%d — "+
				"parallel rows will measure pool overhead, not speedup; "+
				"results are marked \"degenerate_parallel\": true in -json output\n",
			*par, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}

	// Observability is opt-in: the registry (and the per-run instrumentation
	// it switches on inside the engine) only exists when something will
	// consume it, so plain benchmark runs keep the uninstrumented hot path.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *traceN > 0 {
		tracer = obs.NewTracer(*traceN, 256)
	}
	if *jsonOut != "" || *httpAd != "" || tracer != nil {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
		scale.Registry = reg
		scale.Tracer = tracer
	}
	if *httpAd != "" {
		journal := obs.NewJournal(0)
		journal.RegisterMetrics(reg)
		mux := http.NewServeMux()
		obs.AttachDebugOpts(mux, obs.DebugOptions{Registry: reg, Tracer: tracer, Journal: journal})
		srv := &http.Server{Addr: *httpAd, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "ssjoinbench: debug server:", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssjoinbench: serving /metrics, /debug/traces, /debug/events, /debug/pprof on %s\n", *httpAd)
	}

	var runs []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runs = []experiments.Experiment{e}
	} else {
		runs = experiments.All()
	}

	if *format == "text" {
		fmt.Printf("scale: records=%d workers=%d seed=%d batch=%d parallel=%d kernel=%s verify=%s gomaxprocs=%d\n\n",
			scale.Records, scale.Workers, scale.Seed, scale.Batch, scale.ParallelOrOne(), kern, scale.VerifyMode, runtime.GOMAXPROCS(0))
	}
	report := jsonReport{
		Records: scale.Records, Workers: scale.Workers,
		Seed: scale.Seed, Batch: scale.Batch,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		Parallel:           scale.ParallelOrOne(),
		ParallelAuto:       autoPar,
		Kernel:             kern.String(),
		VerifyMode:         scale.VerifyMode.String(),
		DegenerateParallel: degenerate,
	}
	var ms runtime.MemStats
	for _, e := range runs {
		if reg != nil {
			// Fresh registry per experiment so each -json entry snapshots
			// only its own run; process metrics are re-bound after the wipe.
			reg.Reset()
			obs.RegisterProcessMetrics(reg)
		}
		runtime.ReadMemStats(&ms)
		mallocsBefore := ms.Mallocs
		start := time.Now()
		tab := e.Run(scale)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		default:
			fmt.Print(tab.Format())
			fmt.Printf("(%v)\n\n", elapsed.Round(time.Millisecond))
		}
		rec := runRecord{
			ID:              tab.ID,
			Title:           tab.Title,
			ElapsedSec:      elapsed.Seconds(),
			AllocsPerRecord: float64(ms.Mallocs-mallocsBefore) / float64(scale.Records),
			Columns:         tab.Columns,
			Rows:            tab.Rows,
			Notes:           tab.Notes,
		}
		if reg != nil {
			rec.Metrics = reg.Snapshot()
		}
		report.Experiments = append(report.Experiments, rec)
	}
	if tracer != nil {
		report.TraceEvery = *traceN
		report.TracesSampled = tracer.Sampled()
		if *format == "text" {
			fmt.Printf("traces sampled: %d (1 per %d tuples)\n", tracer.Sampled(), *traceN)
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
