// Command ssjoinbench regenerates the paper's tables and figures.
//
//	ssjoinbench                 # run everything at default scale
//	ssjoinbench -exp E1         # one experiment
//	ssjoinbench -records 50000 -workers 8 -seed 7
//	ssjoinbench -list           # inventory
//
// Output is aligned text, one table per experiment, matching the
// per-experiment index in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment ID to run (default: all)")
		records = flag.Int("records", 0, "records per run (default: experiment default)")
		workers = flag.Int("workers", 0, "worker parallelism (default: experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (default: experiment default)")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text or csv")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.DefaultScale()
	if *records > 0 {
		scale.Records = *records
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	var runs []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runs = []experiments.Experiment{e}
	} else {
		runs = experiments.All()
	}

	if *format == "text" {
		fmt.Printf("scale: records=%d workers=%d seed=%d\n\n", scale.Records, scale.Workers, scale.Seed)
	}
	for _, e := range runs {
		start := time.Now()
		tab := e.Run(scale)
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		default:
			fmt.Print(tab.Format())
			fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
}
