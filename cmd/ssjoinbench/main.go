// Command ssjoinbench regenerates the paper's tables and figures.
//
//	ssjoinbench                 # run everything at default scale
//	ssjoinbench -exp E1         # one experiment
//	ssjoinbench -records 50000 -workers 8 -seed 7
//	ssjoinbench -batch 1        # disable transport micro-batching
//	ssjoinbench -json out.json  # machine-readable results
//	ssjoinbench -list           # inventory
//
// Output is aligned text, one table per experiment, matching the
// per-experiment index in EXPERIMENTS.md. With -json, the same tables are
// additionally written to a JSON file together with per-experiment wall
// time and allocation counts, for benchmark tracking across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

// runRecord is one experiment's table plus measurement metadata, the unit
// of the -json report.
type runRecord struct {
	ID              string     `json:"id"`
	Title           string     `json:"title"`
	ElapsedSec      float64    `json:"elapsed_sec"`
	AllocsPerRecord float64    `json:"allocs_per_record"`
	Columns         []string   `json:"columns"`
	Rows            [][]string `json:"rows"`
	Notes           string     `json:"notes,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Records     int         `json:"records"`
	Workers     int         `json:"workers"`
	Seed        int64       `json:"seed"`
	Batch       int         `json:"batch"`
	Experiments []runRecord `json:"experiments"`
}

func main() {
	var (
		expID   = flag.String("exp", "", "experiment ID to run (default: all)")
		records = flag.Int("records", 0, "records per run (default: experiment default)")
		workers = flag.Int("workers", 0, "worker parallelism (default: experiment default)")
		seed    = flag.Int64("seed", 0, "workload seed (default: experiment default)")
		batch   = flag.Int("batch", 0, "transport batch size (0 = engine default, 1 = unbatched)")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text or csv")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		jsonOut = flag.String("json", "", "also write machine-readable results to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := experiments.DefaultScale()
	if *records > 0 {
		scale.Records = *records
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	if *batch > 0 {
		scale.Batch = *batch
	}

	var runs []experiments.Experiment
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runs = []experiments.Experiment{e}
	} else {
		runs = experiments.All()
	}

	if *format == "text" {
		fmt.Printf("scale: records=%d workers=%d seed=%d batch=%d\n\n",
			scale.Records, scale.Workers, scale.Seed, scale.Batch)
	}
	report := jsonReport{
		Records: scale.Records, Workers: scale.Workers,
		Seed: scale.Seed, Batch: scale.Batch,
	}
	var ms runtime.MemStats
	for _, e := range runs {
		runtime.ReadMemStats(&ms)
		mallocsBefore := ms.Mallocs
		start := time.Now()
		tab := e.Run(scale)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		switch *format {
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		default:
			fmt.Print(tab.Format())
			fmt.Printf("(%v)\n\n", elapsed.Round(time.Millisecond))
		}
		report.Experiments = append(report.Experiments, runRecord{
			ID:              tab.ID,
			Title:           tab.Title,
			ElapsedSec:      elapsed.Seconds(),
			AllocsPerRecord: float64(ms.Mallocs-mallocsBefore) / float64(scale.Records),
			Columns:         tab.Columns,
			Rows:            tab.Rows,
			Notes:           tab.Notes,
		})
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
