// Command repolint runs the repo-specific static analysis suite
// (internal/lint) over Go packages. It has two modes:
//
// Standalone, the `make lint` gate:
//
//	repolint ./...
//	repolint -checks lockcheck,ctxcheck ./internal/remote
//
// Vet tool, speaking the cmd/go vet protocol so the suite can ride the
// build cache:
//
//	go vet -vettool=$(go env GOPATH)/bin/repolint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or internal error.
// docs/LINTING.md describes every analyzer and the suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ExitOnError)
	var (
		version  = fs.String("V", "", "print version and exit (vet tool protocol)")
		flagsOut = fs.Bool("flags", false, "print supported flags as JSON and exit (vet tool protocol)")
		checks   = fs.String("checks", "", "comma-separated analyzer subset (default: all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		dir      = fs.String("C", "", "change to dir before loading packages")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *version != "" {
		// cmd/go hashes this line to identify the tool build.
		fmt.Println("repolint version repro-v1")
		return 0
	}
	if *flagsOut {
		return printFlags(fs)
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		all = append(all, diags...)
	}
	return report(all, *jsonOut)
}

// printFlags emits the flag descriptions cmd/go requests before running a
// vet tool, so it knows which vet flags the tool accepts.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}

// report prints diagnostics and converts them to an exit status.
func report(diags []lint.Diagnostic, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the JSON cmd/go hands a vet tool for one package.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one package described by a vet .cfg file: parse the
// listed sources, type-check against the export data cmd/go already built,
// run the suite, and write the (empty) facts file the protocol requires.
func runVetTool(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("repolint: no export data for %q", path)
		}
		return os.Open(file)
	}
	filenames := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames[i] = f
	}
	pkg, err := lint.TypecheckFiles(fset, cfg.ImportPath, filenames,
		importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // vet protocol: nonzero fails the go vet invocation
	}
	return 0
}
