// Command repolint runs the repo-specific static analysis suite
// (internal/lint) over Go packages. It has two modes:
//
// Standalone, the `make lint` gate — whole-program: all packages are
// analyzed together in dependency order with a shared fact store, so the
// interprocedural analyzers (lockorder, allocheck, wirestate) see across
// package boundaries and their whole-repo Finish checks run:
//
//	repolint ./...
//	repolint -run lockorder,allocheck ./...
//	repolint -baseline lint.baseline.json ./...
//	repolint -sarif lint.sarif ./...
//
// Vet tool, speaking the cmd/go vet protocol so the suite can ride the
// build cache; facts are serialized into the .vetx files the protocol
// caches, but whole-program Finish checks are skipped (cmd/go feeds one
// package at a time), so the standalone mode is the authoritative gate:
//
//	go vet -vettool=$(go env GOPATH)/bin/repolint ./...
//
// With -baseline, only findings absent from the baseline file fail the
// run; -update-baseline rewrites the file from the current findings.
// Exit status: 0 clean, 1 findings, 2 usage or internal error.
// docs/LINTING.md describes every analyzer and the suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ExitOnError)
	var (
		version  = fs.String("V", "", "print version and exit (vet tool protocol)")
		flagsOut = fs.Bool("flags", false, "print supported flags as JSON and exit (vet tool protocol)")
		checks   = fs.String("checks", "", "comma-separated analyzer subset (default: all)")
		runSel   = fs.String("run", "", "comma-separated analyzer subset (alias of -checks)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON")
		sarifOut = fs.String("sarif", "", "write SARIF 2.1.0 output to this file (\"-\" for stdout)")
		baseline = fs.String("baseline", "", "baseline file: fail only on findings not recorded in it")
		updateBl = fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
		dir      = fs.String("C", "", "change to dir before loading packages")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *version != "" {
		// cmd/go hashes this line to identify the tool build.
		fmt.Println("repolint version repro-v2")
		return 0
	}
	if *flagsOut {
		return printFlags(fs)
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	sel := *checks
	if *runSel != "" {
		if sel != "" && sel != *runSel {
			fmt.Fprintln(os.Stderr, "repolint: -run and -checks disagree; use one")
			return 2
		}
		sel = *runSel
	}
	analyzers, err := lint.ByName(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.RunAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	relativize(diags, *dir)

	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, diags, analyzers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *updateBl {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "repolint: -update-baseline requires -baseline <file>")
			return 2
		}
		if err := lint.WriteBaseline(*baseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "repolint: baseline %s updated with %d finding(s)\n", *baseline, len(diags))
		return 0
	}
	if *baseline != "" {
		known, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fresh := lint.NewFindings(diags, known)
		if n := len(diags) - len(fresh); n > 0 {
			fmt.Fprintf(os.Stderr, "repolint: %d baselined finding(s) suppressed (see %s)\n", n, *baseline)
		}
		diags = fresh
	}
	return report(diags, *jsonOut)
}

// relativize rewrites absolute diagnostic paths relative to the working
// directory (or -C dir), so baselines and SARIF artifacts are stable
// across checkouts.
func relativize(diags []lint.Diagnostic, dir string) {
	base := dir
	if base == "" {
		base, _ = os.Getwd()
	}
	abs, err := filepath.Abs(base)
	if err != nil {
		return
	}
	for i := range diags {
		if !filepath.IsAbs(diags[i].Pos.Filename) {
			continue
		}
		rel, err := filepath.Rel(abs, diags[i].Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		diags[i].Pos.Filename = filepath.ToSlash(rel)
	}
}

// writeSARIFFile renders diags as SARIF to path, "-" meaning stdout.
func writeSARIFFile(path string, diags []lint.Diagnostic, analyzers []*lint.Analyzer) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return lint.WriteSARIF(w, diags, analyzers)
}

// printFlags emits the flag descriptions cmd/go requests before running a
// vet tool, so it knows which vet flags the tool accepts.
func printFlags(fs *flag.FlagSet) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return 0
}

// report prints diagnostics and converts them to an exit status.
func report(diags []lint.Diagnostic, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the JSON cmd/go hands a vet tool for one package.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes one package described by a vet .cfg file: parse the
// listed sources, type-check against the export data cmd/go already built,
// import the dependencies' facts from their .vetx files, run the suite's
// per-package phase, and write this package's serialized facts to
// VetxOutput so dependents can consume them. Whole-program Finish checks
// do not run in this mode.
func runVetTool(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("repolint: no export data for %q", path)
		}
		return os.Open(file)
	}
	filenames := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames[i] = f
	}
	pkg, err := lint.TypecheckFiles(fset, cfg.ImportPath, filenames,
		importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Dependencies' facts ride the vet cache: one .vetx file per direct
	// dependency (each already folds in its own dependencies' facts).
	var depFacts [][]byte
	for _, vetxFile := range sortedValues(cfg.PackageVetx) {
		facts, err := os.ReadFile(vetxFile)
		if err != nil {
			// A dependency without facts (stale cache entry) degrades the
			// interprocedural checks but must not fail the build.
			continue
		}
		depFacts = append(depFacts, facts)
	}
	diags, facts, err := lint.RunModular(pkg, analyzers, depFacts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // vet protocol: nonzero fails the go vet invocation
	}
	return 0
}

// sortedValues returns m's values ordered by key, for deterministic fact
// loading.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
