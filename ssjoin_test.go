package ssjoin

import (
	"math/rand"
	"testing"
)

func TestNewStreamValidation(t *testing.T) {
	bad := []Config{
		{},                                  // missing threshold
		{Threshold: -0.5},                   // negative
		{Threshold: 1.5},                    // fraction > 1 for Jaccard
		{Threshold: 0.8, WindowRecords: -1}, // negative window
		{Threshold: 0.8, WindowRecords: 5, WindowTicks: 5}, // both windows
		{Threshold: 0.8, Function: Similarity(99)},
		{Threshold: 0.8, Algorithm: Algorithm(99)},
	}
	for i, cfg := range bad {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := NewStream(Config{Threshold: 3, Function: Overlap}); err != nil {
		t.Errorf("overlap count threshold should be accepted: %v", err)
	}
}

func TestStreamFindsNearDuplicates(t *testing.T) {
	for _, alg := range []Algorithm{Bundle, Prefix, Naive} {
		s, err := NewStream(Config{Threshold: 0.8, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		id0, m := s.Add([]uint32{1, 2, 3, 4, 5})
		if len(m) != 0 {
			t.Fatalf("%v: first record matched %v", alg, m)
		}
		_, m = s.Add([]uint32{1, 2, 3, 4, 5})
		if len(m) != 1 || m[0].ID != id0 || m[0].Similarity != 1.0 || m[0].Overlap != 5 {
			t.Fatalf("%v: matches=%v", alg, m)
		}
	}
}

func TestStreamHandlesUnsortedDuplicateTokens(t *testing.T) {
	s, _ := NewStream(Config{Threshold: 0.9})
	id0, _ := s.Add([]uint32{5, 1, 3, 3, 2, 4, 1})
	_, m := s.Add([]uint32{1, 2, 3, 4, 5})
	if len(m) != 1 || m[0].ID != id0 {
		t.Fatalf("matches=%v", m)
	}
}

func TestCountWindowExpires(t *testing.T) {
	s, _ := NewStream(Config{Threshold: 0.9, WindowRecords: 1})
	s.Add([]uint32{1, 2, 3})
	s.Add([]uint32{7, 8, 9})
	_, m := s.Add([]uint32{1, 2, 3}) // original expired two records ago
	if len(m) != 0 {
		t.Fatalf("expired record matched: %v", m)
	}
	if s.Size() > 2 {
		t.Fatalf("window not enforced: size=%d", s.Size())
	}
}

func TestTickWindowExpires(t *testing.T) {
	s, _ := NewStream(Config{Threshold: 0.9, WindowTicks: 10})
	s.AddAt([]uint32{1, 2, 3}, 0)
	_, m := s.AddAt([]uint32{1, 2, 3}, 5)
	if len(m) != 1 {
		t.Fatalf("in-window match missing: %v", m)
	}
	_, m = s.AddAt([]uint32{1, 2, 3}, 100)
	if len(m) != 0 { // both earlier records are outside the 10-tick window
		t.Fatalf("expired records matched at t=100: %v", m)
	}
}

func TestStreamStats(t *testing.T) {
	s, _ := NewStream(Config{Threshold: 0.8})
	s.Add([]uint32{1, 2, 3, 4})
	s.Add([]uint32{1, 2, 3, 4})
	st := s.Stats()
	if st.Records != 2 || st.Stored != 2 || st.Results != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMatchesSliceIsReused(t *testing.T) {
	s, _ := NewStream(Config{Threshold: 0.8})
	s.Add([]uint32{1, 2, 3, 4})
	_, m1 := s.Add([]uint32{1, 2, 3, 4})
	if len(m1) != 1 {
		t.Fatal("setup failed")
	}
	saved := m1[0]
	s.Add([]uint32{100, 200, 300})
	if saved != (Match{ID: 0, Overlap: 4, Similarity: 1.0}) {
		t.Fatalf("copied match corrupted: %+v", saved)
	}
}

func TestAllAlgorithmsAgreeViaPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sets := make([][]uint32, 400)
	for i := range sets {
		n := 3 + rng.Intn(10)
		set := make([]uint32, n)
		for j := range set {
			set[j] = uint32(rng.Intn(80))
		}
		sets[i] = set
	}
	type pair struct{ a, b uint64 }
	run := func(alg Algorithm) map[pair]bool {
		s, err := NewStream(Config{Threshold: 0.7, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[pair]bool)
		for _, set := range sets {
			id, ms := s.Add(set)
			for _, m := range ms {
				out[pair{m.ID, id}] = true
			}
		}
		return out
	}
	want := run(Naive)
	for _, alg := range []Algorithm{Bundle, Prefix} {
		got := run(alg)
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs vs %d", alg, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%v: missing %v", alg, p)
			}
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if Jaccard.String() != "jaccard" || Cosine.String() != "cosine" ||
		Dice.String() != "dice" || Overlap.String() != "overlap" {
		t.Fatal("similarity strings")
	}
	if Bundle.String() != "bundle" || Prefix.String() != "prefix" || Naive.String() != "naive" {
		t.Fatal("algorithm strings")
	}
	if LengthBased.String() != "length" || PrefixBased.String() != "prefix" ||
		BroadcastBased.String() != "broadcast" {
		t.Fatal("distribution strings")
	}
	if LoadAware.String() != "load-aware" || EvenLength.String() != "even-length" ||
		EvenFrequency.String() != "even-frequency" {
		t.Fatal("partitioner strings")
	}
}

func TestTextStreamWords(t *testing.T) {
	sample := []string{
		"breaking news market rally continues",
		"weather sunny with clouds",
		"sports team wins championship final",
	}
	ts, err := NewTextStream(Config{Threshold: 0.7}, Words, sample)
	if err != nil {
		t.Fatal(err)
	}
	id0, _ := ts.Add("Breaking news: market rally continues!")
	_, m := ts.Add("breaking news market rally CONTINUES")
	if len(m) != 1 || m[0].ID != id0 {
		t.Fatalf("text dedup failed: %v", m)
	}
	if ts.Size() != 2 || ts.Stats().Records != 2 {
		t.Fatalf("size/stats: %d %+v", ts.Size(), ts.Stats())
	}
}

func TestTextStreamQGrams(t *testing.T) {
	ts, err := NewTextStream(Config{Threshold: 0.6}, QGrams, nil)
	if err != nil {
		t.Fatal(err)
	}
	id0, _ := ts.Add("similarity")
	_, m := ts.Add("similarty") // typo
	if len(m) != 1 || m[0].ID != id0 {
		t.Fatalf("qgram fuzzy match failed: %v", m)
	}
}

func TestTextStreamBadTokenization(t *testing.T) {
	if _, err := NewTextStream(Config{Threshold: 0.8}, Tokenization(9), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestTextStreamEmptyText(t *testing.T) {
	ts, _ := NewTextStream(Config{Threshold: 0.8}, Words, nil)
	_, m := ts.Add("...")
	if len(m) != 0 {
		t.Fatalf("empty text matched: %v", m)
	}
	_, m = ts.Add("!!!")
	if len(m) != 0 {
		t.Fatalf("two empty texts matched: %v", m)
	}
}

func TestJoinBatchMatchesStream(t *testing.T) {
	sets := [][]uint32{
		{1, 2, 3, 4, 5},
		{9, 8, 7},
		{1, 2, 3, 4, 5, 6},
		{7, 8, 9, 10},
	}
	pairs, err := JoinBatch(sets, Config{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// (0,2): 5/6 = 0.833; (1,3): 3/4 = 0.75
	if len(pairs) != 2 {
		t.Fatalf("pairs: %v", pairs)
	}
	if pairs[0].A != 0 || pairs[0].B != 2 || pairs[1].A != 1 || pairs[1].B != 3 {
		t.Fatalf("pairs: %v", pairs)
	}
	// Batch and streaming must agree on the same data.
	s, _ := NewStream(Config{Threshold: 0.7})
	n := 0
	for _, set := range sets {
		_, ms := s.Add(set)
		n += len(ms)
	}
	if n != len(pairs) {
		t.Fatalf("stream found %d, batch %d", n, len(pairs))
	}
}

func TestJoinBatchRejectsWindows(t *testing.T) {
	if _, err := JoinBatch(nil, Config{Threshold: 0.8, WindowRecords: 10}); err == nil {
		t.Fatal("window accepted in batch mode")
	}
	if _, err := JoinBatch(nil, Config{}); err == nil {
		t.Fatal("missing threshold accepted")
	}
}

func TestRefreshOrderingPreservesMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocabA := make([]string, 60)
	for i := range vocabA {
		vocabA[i] = "alpha" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	makeText := func() string {
		out := ""
		for j := 0; j < 6; j++ {
			out += vocabA[rng.Intn(len(vocabA))] + " "
		}
		return out
	}
	sample := make([]string, 30)
	for i := range sample {
		sample[i] = makeText()
	}
	tsA, _ := NewTextStream(Config{Threshold: 0.6, WindowRecords: 200}, Words, sample)
	tsB, _ := NewTextStream(Config{Threshold: 0.6, WindowRecords: 200}, Words, sample)
	texts := make([]string, 300)
	for i := range texts {
		texts[i] = makeText()
	}
	for i, text := range texts {
		if i == 150 {
			tsB.RefreshOrdering() // mid-stream refresh on B only
		}
		_, mA := tsA.Add(text)
		gotA := len(mA)
		_, mB := tsB.Add(text)
		if gotA != len(mB) {
			t.Fatalf("record %d: %d matches vs %d after refresh", i, gotA, len(mB))
		}
	}
	if tsA.Size() != tsB.Size() {
		t.Fatalf("sizes diverged: %d vs %d", tsA.Size(), tsB.Size())
	}
}

func TestRefreshOrderingRestoresPruning(t *testing.T) {
	// Bootstrap on one vocabulary, then stream a different one whose most
	// frequent word was unseen at bootstrap: it gets a rare rank and lands
	// in every prefix. After refresh, candidates per record must drop.
	sample := []string{"old words entirely different universe"}
	build := func() *TextStream {
		ts, _ := NewTextStream(Config{Threshold: 0.8, Algorithm: Prefix}, Words, sample)
		return ts
	}
	rng := rand.New(rand.NewSource(9))
	makeText := func(i int) string {
		// "common" appears in EVERY record; the rest are unique-ish.
		return "common w" + itoa(i) + " x" + itoa(rng.Intn(1000)) + " y" + itoa(rng.Intn(1000))
	}
	const n = 1500
	run := func(refreshAt int) uint64 {
		ts := build()
		for i := 0; i < n; i++ {
			if i == refreshAt {
				ts.RefreshOrdering()
			}
			ts.Add(makeText(i))
		}
		return ts.Stats().Candidates
	}
	noRefresh := run(-1)
	refreshed := run(n / 4)
	if refreshed >= noRefresh {
		t.Fatalf("refresh did not reduce candidates: %d vs %d", refreshed, noRefresh)
	}
	if refreshed*2 > noRefresh {
		t.Fatalf("refresh saving too small: %d vs %d", refreshed, noRefresh)
	}
}
