package ssjoin

import (
	"bytes"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := Config{Threshold: 0.8, WindowRecords: 50}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets := randomSets(120, 40, 3)
	for _, set := range sets[:80] {
		s.Add(set)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != s.Size() {
		t.Fatalf("restored size %d, original %d", restored.Size(), s.Size())
	}

	// Both streams must behave identically from here.
	for _, set := range sets[80:] {
		idA, msA := s.Add(set)
		gotA := append([]Match(nil), msA...)
		idB, msB := restored.Add(set)
		if idA != idB {
			t.Fatalf("ID divergence: %d vs %d", idA, idB)
		}
		if len(gotA) != len(msB) {
			t.Fatalf("match divergence at %d: %v vs %v", idA, gotA, msB)
		}
		seen := make(map[uint64]bool)
		for _, m := range gotA {
			seen[m.ID] = true
		}
		for _, m := range msB {
			if !seen[m.ID] {
				t.Fatalf("restored stream matched %d, original did not", m.ID)
			}
		}
	}
}

func TestRestoreStreamRejectsBadInput(t *testing.T) {
	if _, err := RestoreStream(bytes.NewReader([]byte("junk")), Config{Threshold: 0.8}); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := RestoreStream(bytes.NewReader(nil), Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTextStreamSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Threshold: 0.7}
	sample := []string{
		"market rally continues strong",
		"weather turns cold tonight",
		"championship game ends in draw",
	}
	ts, err := NewTextStream(cfg, Words, sample)
	if err != nil {
		t.Fatal(err)
	}
	headlines := []string{
		"market rally continues strong today",
		"weather turns cold tonight everywhere",
		"new unseen vocabulary appears here",
	}
	for _, h := range headlines {
		ts.Add(h)
	}

	var buf bytes.Buffer
	if err := ts.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTextStream(bytes.NewReader(buf.Bytes()), cfg, Words)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != ts.Size() {
		t.Fatalf("size: %d vs %d", restored.Size(), ts.Size())
	}

	// Both must match new text identically — including text using the
	// "unseen vocabulary" that was interned after the ordering froze.
	probes := []string{
		"market rally continues strong today",
		"new unseen vocabulary appears here",
		"completely fresh words entirely",
	}
	for _, p := range probes {
		idA, msA := ts.Add(p)
		gotA := append([]Match(nil), msA...)
		idB, msB := restored.Add(p)
		if idA != idB || len(gotA) != len(msB) {
			t.Fatalf("divergence on %q: (%d,%v) vs (%d,%v)", p, idA, gotA, idB, msB)
		}
		for i := range gotA {
			if gotA[i] != msB[i] {
				t.Fatalf("match %d differs on %q: %+v vs %+v", i, p, gotA[i], msB[i])
			}
		}
	}
}

func TestRestoreTextStreamRejectsBadInput(t *testing.T) {
	if _, err := RestoreTextStream(bytes.NewReader([]byte("nope")), Config{Threshold: 0.8}, Words); err == nil {
		t.Fatal("garbage accepted")
	}
	ts, _ := NewTextStream(Config{Threshold: 0.8}, Words, nil)
	var buf bytes.Buffer
	if err := ts.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreTextStream(bytes.NewReader(buf.Bytes()), Config{Threshold: 0.8}, Tokenization(9)); err == nil {
		t.Fatal("bad tokenization accepted")
	}
}
