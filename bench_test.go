// Benchmarks regenerating the paper's evaluation, one per table/figure
// (EXPERIMENTS.md maps IDs to artefacts). Distributed benches run a full
// topology per iteration and report rec/s and comm-tuples/record; local
// benches drive a joiner record-at-a-time.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE1 -benchtime=3x
package ssjoin

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/bundle"
	"repro/internal/dispatch"
	"repro/internal/filter"
	"repro/internal/local"
	"repro/internal/offline"
	"repro/internal/partition"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/topology"
	"repro/internal/window"
	"repro/internal/wire"
	"repro/internal/workload"
)

const benchRecords = 8000

func benchStream(prof workload.Profile) []*record.Record {
	return workload.NewGenerator(prof).Generate(benchRecords)
}

func benchParams(tau float64) filter.Params {
	return filter.Params{Func: similarity.Jaccard, Threshold: tau}
}

func benchStrategy(name string, p filter.Params, recs []*record.Record, k int) dispatch.Strategy {
	switch name {
	case "length":
		var h partition.Histogram
		for _, r := range recs {
			h.Add(r.Len())
		}
		w := partition.CostModel{Params: p}.Weights(&h)
		return dispatch.NewLengthBased(p, partition.LoadAware(w, k))
	case "prefix":
		return dispatch.PrefixBased{Params: p}
	default:
		return dispatch.BroadcastBased{}
	}
}

// runDistributedBench executes one full topology per iteration, reporting
// throughput and communication.
func runDistributedBench(b *testing.B, recs []*record.Record, strat dispatch.Strategy, p filter.Params, k int, win window.Policy) {
	b.Helper()
	var lastTuples uint64
	var totalSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := topology.Run(recs, topology.Config{
			Workers: k, Strategy: strat, Algorithm: local.Bundled,
			Params: p, Window: win,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastTuples = res.CommTuples
		totalSec += res.Elapsed.Seconds()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(recs))/totalSec, "rec/s")
	b.ReportMetric(float64(lastTuples)/float64(len(recs)), "tuples/rec")
}

// BenchmarkE1 — throughput vs threshold per distribution framework
// (figure E1; also produces E3's tuples/rec series).
func BenchmarkE1(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	for _, tau := range []float64{0.6, 0.7, 0.8, 0.9} {
		for _, name := range []string{"length", "prefix", "broadcast"} {
			p := benchParams(tau)
			b.Run(fmt.Sprintf("%s/tau=%.1f", name, tau), func(b *testing.B) {
				runDistributedBench(b, recs, benchStrategy(name, p, recs, 8), p, 8, nil)
			})
		}
	}
}

// BenchmarkE2 — scalability: throughput vs worker count (figure E2).
func BenchmarkE2(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, k := range []int{1, 2, 4, 8} {
		for _, name := range []string{"length", "broadcast"} {
			b.Run(fmt.Sprintf("%s/workers=%d", name, k), func(b *testing.B) {
				runDistributedBench(b, recs, benchStrategy(name, p, recs, k), p, k, nil)
			})
		}
	}
}

// BenchmarkE4 — replication and index footprint per framework (figure E4):
// bench time tracks index maintenance; the tuples/rec metric exposes
// shipping volume.
func BenchmarkE4(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, name := range []string{"length", "prefix", "broadcast"} {
		b.Run(name, func(b *testing.B) {
			runDistributedBench(b, recs, benchStrategy(name, p, recs, 8), p, 8, nil)
		})
	}
}

// BenchmarkE6 — throughput by length partitioner (figures E5/E6).
func BenchmarkE6(b *testing.B) {
	recs := benchStream(workload.EnronLike(42))
	p := benchParams(0.8)
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	w := partition.CostModel{Params: p}.Weights(&h)
	parts := []struct {
		name string
		part partition.Partition
	}{
		{"even-length", partition.EvenLength(h.MaxLen(), 8)},
		{"even-frequency", partition.EvenFrequency(&h, 8)},
		{"load-aware", partition.LoadAware(w, 8)},
	}
	for _, pp := range parts {
		b.Run(pp.name, func(b *testing.B) {
			runDistributedBench(b, recs, dispatch.NewLengthBased(p, pp.part), p, 8, nil)
		})
	}
}

// runLocalBench drives a fresh joiner over the stream once per iteration.
func runLocalBench(b *testing.B, recs []*record.Record, alg local.Algorithm, opt local.Options) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := local.New(alg, opt)
		for _, r := range recs {
			j.Step(r, true, func(local.Match) {})
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*len(recs))/elapsed, "rec/s")
	}
}

// BenchmarkE7 — bundle join vs record-at-a-time joiners (figure E7).
func BenchmarkE7(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, alg := range []local.Algorithm{local.Prefix, local.Bundled} {
		b.Run(alg.String(), func(b *testing.B) {
			runLocalBench(b, recs, alg, local.Options{Params: p})
		})
	}
}

// BenchmarkE8 — batch vs one-by-one verification (figure E8).
func BenchmarkE8(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, mode := range []struct {
		name string
		one  bool
	}{{"batch", false}, {"one-by-one", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runLocalBench(b, recs, local.Bundled, local.Options{
				Params: p, Bundle: bundle.Config{OneByOneVerify: mode.one},
			})
		})
	}
}

// BenchmarkE9 — bundle grouping-threshold sweep (figure E9).
func BenchmarkE9(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, lambda := range []float64{0.8, 0.9, 1.01} {
		b.Run(fmt.Sprintf("lambda=%.2f", lambda), func(b *testing.B) {
			runLocalBench(b, recs, local.Bundled, local.Options{
				Params: p, Bundle: bundle.Config{GroupThreshold: lambda},
			})
		})
	}
}

// BenchmarkE11 — window-size sweep (figure E11).
func BenchmarkE11(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	for _, win := range []window.Policy{
		window.Count{N: benchRecords / 20},
		window.Count{N: benchRecords / 4},
		window.Unbounded{},
	} {
		b.Run(win.String(), func(b *testing.B) {
			runLocalBench(b, recs, local.Bundled, local.Options{Params: p, Window: win})
		})
	}
}

// BenchmarkE12 — similarity-function generality (figure E12).
func BenchmarkE12(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	for _, f := range []similarity.Func{similarity.Jaccard, similarity.Cosine, similarity.Dice} {
		b.Run(f.String(), func(b *testing.B) {
			runLocalBench(b, recs, local.Bundled, local.Options{
				Params: filter.Params{Func: f, Threshold: 0.8},
			})
		})
	}
}

// BenchmarkVerifyKernel — the micro-kernel every joiner bottoms out in:
// merge-based overlap verification with early termination.
func BenchmarkVerifyKernel(b *testing.B) {
	a := make([]uint32, 64)
	c := make([]uint32, 64)
	for i := range a {
		a[i] = uint32(2 * i)
		c[i] = uint32(2*i + i%3)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.IntersectSize(a, c)
		}
	})
	b.Run("early-stop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			similarity.VerifyOverlap(a, c, 60)
		}
	})
}

// BenchmarkPositionFilterAblation — the DESIGN.md ablation: prefix joiner
// work with the position filter on (production path) vs the naive joiner
// without any candidate filtering.
func BenchmarkPositionFilterAblation(b *testing.B) {
	recs := workload.NewGenerator(workload.UniformSmall(42)).Generate(2500)
	p := benchParams(0.8)
	b.Run("prefix+filters", func(b *testing.B) {
		runLocalBench(b, recs, local.Prefix, local.Options{Params: p})
	})
	b.Run("naive", func(b *testing.B) {
		runLocalBench(b, recs, local.Naive, local.Options{Params: p})
	})
}

// BenchmarkPublicAPI — Stream.Add end to end through the public surface.
func BenchmarkPublicAPI(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	sets := make([][]uint32, len(recs))
	for i, r := range recs {
		sets[i] = r.Tokens
	}
	b.ResetTimer()
	s, err := NewStream(Config{Threshold: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.Add(sets[i%len(sets)])
	}
}

// BenchmarkSuffixFilter — ablation of the optional recursive suffix filter
// in the prefix joiner (DESIGN.md ablation list).
func BenchmarkSuffixFilter(b *testing.B) {
	recs := benchStream(workload.EnronLike(42))
	p := benchParams(0.8)
	for _, mode := range []struct {
		name   string
		suffix bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runLocalBench(b, recs, local.Prefix, local.Options{
				Params: p, SuffixFilter: mode.suffix,
			})
		})
	}
}

// BenchmarkE15 — streaming vs offline join on a static dataset.
func BenchmarkE15(b *testing.B) {
	recs := benchStream(workload.AOLLike(42))
	p := benchParams(0.8)
	b.Run("streaming-prefix", func(b *testing.B) {
		runLocalBench(b, recs, local.Prefix, local.Options{Params: p})
	})
	b.Run("streaming-bundle", func(b *testing.B) {
		runLocalBench(b, recs, local.Bundled, local.Options{Params: p})
	})
	b.Run("offline-ppjoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			offline.Join(recs, p, func(offline.Pair) {})
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(b.N*len(recs))/s, "rec/s")
		}
	})
}

// BenchmarkWireCodec — the serialization kernel of the TCP runtime.
func BenchmarkWireCodec(b *testing.B) {
	recs := benchStream(workload.TweetLike(42))
	b.Run("encode", func(b *testing.B) {
		w := wire.NewWriter(io.Discard)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.WriteRecord(true, recs[i%len(recs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("roundtrip", func(b *testing.B) {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		for _, r := range recs[:512] {
			if err := w.WriteRecord(true, r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := wire.NewReader(bytes.NewReader(raw))
			for {
				typ, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if typ == wire.TypeRecord {
					if _, err := r.ReadRecord(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}
