// Data cleaning: streaming entity matching over dirty customer records —
// the data-integration application from the paper's introduction. Records
// arrive from two "systems" with different formatting conventions and
// typos; character q-grams make the join robust to both, and a two-stream
// join (TextBiStream) links records ACROSS systems only — re-entries
// within one system are not the integration target.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	ssjoin "repro"
)

type customer struct {
	name, street, city, phone string
}

var firstNames = []string{"maria", "james", "wei", "fatima", "ivan", "aisha", "lucas", "nora", "diego", "yuki"}
var lastNames = []string{"garcia", "smith", "chen", "hassan", "petrov", "okafor", "silva", "novak", "tanaka", "brown"}
var streets = []string{"oak avenue", "main street", "hill road", "lake drive", "park lane", "river way"}
var cities = []string{"springfield", "riverton", "lakeside", "fairview", "georgetown", "ashland"}

func randomCustomer(rng *rand.Rand) customer {
	return customer{
		name:   firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))],
		street: fmt.Sprintf("%d %s", 1+rng.Intn(999), streets[rng.Intn(len(streets))]),
		city:   cities[rng.Intn(len(cities))],
		phone:  fmt.Sprintf("555-%07d", rng.Intn(10_000_000)),
	}
}

// systemA renders a clean record; systemB abbreviates and introduces typos.
// The phone number survives both systems — the stable field that anchors
// the match, as in real CRM feeds.
func systemA(c customer) string {
	return fmt.Sprintf("%s, %s, %s, %s", c.name, c.street, c.city, c.phone)
}

func systemB(rng *rand.Rand, c customer) string {
	s := strings.ToUpper(c.name) + " | " + abbreviate(c.street) + " | " + c.city + " | " + c.phone
	// typo: drop or swap one character
	if len(s) > 10 {
		i := 5 + rng.Intn(len(s)-6)
		s = s[:i] + s[i+1:]
	}
	return s
}

func abbreviate(street string) string {
	r := strings.NewReplacer("avenue", "ave", "street", "st", "road", "rd", "drive", "dr", "lane", "ln")
	return r.Replace(street)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	matcher, err := ssjoin.NewTextBiStream(ssjoin.Config{
		Threshold: 0.55,          // q-gram similarity survives formatting noise
		Algorithm: ssjoin.Bundle, // dirty feeds are duplicate-heavy: bundling pays off
	}, ssjoin.QGrams, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Interleave feeds: 60% fresh customers from system A (left side), 40%
	// the same customer re-entered through system B (right side). The
	// two-stream join reports cross-system links only.
	var pool []customer
	type entry struct {
		text string
		cust customer
	}
	var ledger []entry
	truePairs, found, falsePos := 0, 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		var text string
		var c customer
		var matches []ssjoin.Match
		if len(pool) > 0 && rng.Float64() < 0.4 {
			c = pool[rng.Intn(len(pool))]
			text = systemB(rng, c)
			truePairs++
			_, matches = matcher.AddRight(text)
		} else {
			c = randomCustomer(rng)
			pool = append(pool, c)
			text = systemA(c)
			_, matches = matcher.AddLeft(text)
		}
		hit := false
		for _, m := range matches {
			if ledger[m.ID].cust == c {
				hit = true
			} else {
				falsePos++
			}
		}
		if hit {
			found++
			if found <= 5 {
				fmt.Printf("match: %-48q == %q\n", text, ledger[matches[0].ID].text)
			}
		}
		ledger = append(ledger, entry{text: text, cust: c})
	}

	fmt.Printf("\n%d records; %d re-entries, %d linked (recall %.0f%%), %d false links\n",
		n, truePairs, found, 100*float64(found)/float64(truePairs), falsePos)
	fmt.Printf("stores: system A holds %d records, system B holds %d\n",
		matcher.SizeLeft(), matcher.SizeRight())
}
