// Load balancing: why the length-based framework needs the load-aware
// partitioner. This example joins the same skewed stream distributed over
// eight workers under each of the three length partitioners and prints the
// per-worker load profile and throughput of each — even splits leave one
// straggler doing most of the verification work; the cost-model split
// equalizes it.
package main

import (
	"fmt"
	"log"

	ssjoin "repro"

	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/similarity"
	"repro/internal/workload"
)

func main() {
	// ENRON-like: long records with a fat tail — the worst case for naive
	// length partitioning.
	gen := workload.NewGenerator(workload.EnronLike(99))
	recs := gen.Generate(8000)
	sets := make([][]uint32, len(recs))
	for i, r := range recs {
		sets[i] = r.Tokens
	}

	// The cost model the load-aware partitioner optimizes: estimated local
	// join cost per stored-record length.
	const k = 8
	params := filter.Params{Func: similarity.Jaccard, Threshold: 0.8}
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	weights := partition.CostModel{Params: params}.Weights(&h)
	estimated := map[ssjoin.Partitioner]float64{
		ssjoin.EvenLength:    partition.Imbalance(partition.EvenLength(h.MaxLen(), k), weights),
		ssjoin.EvenFrequency: partition.Imbalance(partition.EvenFrequency(&h, k), weights),
		ssjoin.LoadAware:     partition.Imbalance(partition.LoadAware(weights, k), weights),
	}

	for _, part := range []ssjoin.Partitioner{
		ssjoin.EvenLength, ssjoin.EvenFrequency, ssjoin.LoadAware,
	} {
		res, err := ssjoin.RunDistributed(sets, ssjoin.DistributedConfig{
			Config:       ssjoin.Config{Threshold: 0.8},
			Workers:      k,
			Distribution: ssjoin.LengthBased,
			Partitioner:  part,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s throughput %8.0f rec/s   est. imbalance %6.2fx   realized %.2fx\n",
			part.String(), res.ThroughputPerSec, estimated[part], res.LoadImbalance)
	}
	fmt.Println("\nimbalance = busiest worker / mean worker (1.0 is perfect); the")
	fmt.Println("pipeline drains at the speed of its busiest worker. Estimated uses")
	fmt.Println("the partitioner's merge-cost model; realized counts actual scan and")
	fmt.Println("verification work, which also includes probe-side fan-out effects.")
}
