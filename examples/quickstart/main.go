// Quickstart: the smallest useful ssjoin program. It feeds a handful of
// token-set records and raw-text records through the streaming join and
// prints every near-duplicate the moment it arrives.
package main

import (
	"fmt"
	"log"

	ssjoin "repro"
)

func main() {
	// --- Token-set records -------------------------------------------
	js, err := ssjoin.NewStream(ssjoin.Config{
		Threshold: 0.75, // Jaccard by default
	})
	if err != nil {
		log.Fatal(err)
	}

	sets := [][]uint32{
		{1, 2, 3, 4, 5},
		{6, 7, 8},
		{1, 2, 3, 4, 5, 9}, // near-duplicate of record 0 (sim 5/6)
		{6, 7, 8, 10},      // near-duplicate of record 1 (sim 3/4)
		{20, 21, 22, 23},   // fresh
	}
	fmt.Println("token-set stream:")
	for _, set := range sets {
		id, matches := js.Add(set)
		for _, m := range matches {
			fmt.Printf("  record %d matches record %d (overlap %d, sim %.2f)\n",
				id, m.ID, m.Overlap, m.Similarity)
		}
	}

	// --- Raw text ------------------------------------------------------
	sample := []string{
		"stocks rally as markets open higher",
		"rain expected across the region tonight",
		"team clinches title in overtime thriller",
	}
	ts, err := ssjoin.NewTextStream(ssjoin.Config{Threshold: 0.7}, ssjoin.Words, sample)
	if err != nil {
		log.Fatal(err)
	}
	headlines := []string{
		"Stocks rally as markets open higher",
		"Rain expected across the region tonight",
		"STOCKS RALLY as markets open much higher", // near-dup of #0
	}
	fmt.Println("text stream:")
	for _, h := range headlines {
		id, matches := ts.Add(h)
		for _, m := range matches {
			fmt.Printf("  %q duplicates record %d (sim %.2f)\n", truncate(h, 34), m.ID, m.Similarity)
		}
		_ = id
	}

	st := js.Stats()
	fmt.Printf("stats: %d records, %d results, %d candidates checked\n",
		st.Records, st.Results, st.Candidates)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
