// Remote fleet: the deployment shape — a coordinator driving worker
// processes over TCP with the binary wire protocol, including a mid-stream
// "failover": the first session is stopped with a snapshot request, a new
// fleet is seeded from the snapshots, and the stream resumes with no
// results lost. (Workers run in-process on loopback here; in production
// each would be its own `ssjoinworker` process.)
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"

	"repro/internal/filter"
	"repro/internal/partition"
	"repro/internal/remote"
	"repro/internal/similarity"
	"repro/internal/workload"
)

func startFleet(ctx context.Context, k int) ([]io.ReadWriter, func()) {
	var conns []io.ReadWriter
	var closers []func()
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go remote.ServeWorker(ctx, ln, log.Printf) //nolint:errcheck
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		closers = append(closers, func() { c.Close(); ln.Close() })
	}
	return conns, func() {
		for _, f := range closers {
			f()
		}
	}
}

func main() {
	const (
		k   = 3
		tau = 0.8
		n   = 30000
		cut = 15000
	)
	ctx := context.Background()
	recs := workload.NewGenerator(workload.AOLLike(7)).Generate(n)

	params := filter.Params{Func: similarity.Jaccard, Threshold: tau}
	var h partition.Histogram
	for _, r := range recs {
		h.Add(r.Len())
	}
	weights := partition.CostModel{Params: params}.Weights(&h)
	sess := remote.Session{
		Params:   params,
		Strategy: "length",
		Bounds:   partition.LoadAware(weights, k).Bounds,
	}

	// Phase 1: first fleet processes half the stream, then hands back its
	// window state.
	fleet1, stop1 := startFleet(ctx, k)
	sum1, err := remote.RunWithOpts(ctx, fleet1, sess, recs[:cut], remote.Opts{Snapshot: true})
	if err != nil {
		log.Fatal(err)
	}
	stop1()
	var snapBytes int
	for _, b := range sum1.Snapshots {
		snapBytes += len(b)
	}
	fmt.Printf("phase 1: %d records, %d results, %.0f rec/s; snapshots %d bytes\n",
		sum1.Records, sum1.Results, float64(sum1.Records)/sum1.Elapsed.Seconds(), snapBytes)

	// Phase 2: a brand-new fleet resumes from the snapshots.
	fleet2, stop2 := startFleet(ctx, k)
	defer stop2()
	sum2, err := remote.RunWithOpts(ctx, fleet2, sess, recs[cut:], remote.Opts{Seed: sum1.Snapshots})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: %d records, %d results, %.0f rec/s (resumed on fresh workers)\n",
		sum2.Records, sum2.Results, float64(sum2.Records)/sum2.Elapsed.Seconds())

	// Cross-check: one uninterrupted fleet must find the same total.
	fleet3, stop3 := startFleet(ctx, k)
	defer stop3()
	full, err := remote.Run(ctx, fleet3, sess, recs, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: %d results; split total %d — %s\n",
		full.Results, sum1.Results+sum2.Results,
		verdict(full.Results == sum1.Results+sum2.Results))
}

func verdict(ok bool) string {
	if ok {
		return "no results lost across failover"
	}
	return "MISMATCH"
}
