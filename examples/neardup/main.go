// Near-duplicate detection over a news-wire stream — the paper's motivating
// application. Articles arrive continuously; within a sliding window of the
// most recent 5000 items, every incoming headline is checked against prior
// ones and flagged when it is a near-duplicate (Jaccard >= 0.7 on words).
//
// The wire is simulated: a pool of base headlines is perturbed (agency
// rewrites, prefixes, truncation) to create realistic duplicates at a known
// rate, so detector recall is measurable.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	ssjoin "repro"
)

var subjects = []string{"markets", "parliament", "the storm", "researchers", "the league", "regulators", "the city council", "engineers"}
var verbs = []string{"approve", "reject", "announce", "delay", "expand", "investigate", "celebrate", "suspend"}
var objects = []string{"new budget plan", "trade agreement", "safety rules", "transit line", "energy project", "housing program", "research funding", "water reforms"}
var tails = []string{"after long debate", "amid public pressure", "in surprise move", "despite objections", "for second time", "with broad support"}

func baseHeadline(rng *rand.Rand) string {
	// A place and a figure keep independently drawn headlines apart: the
	// detector should flag rewrites, not the house style.
	return fmt.Sprintf("%s %s %s %s in district%d as costs hit %dm",
		subjects[rng.Intn(len(subjects))],
		verbs[rng.Intn(len(verbs))],
		objects[rng.Intn(len(objects))],
		tails[rng.Intn(len(tails))],
		rng.Intn(400), 1+rng.Intn(900))
}

// rewrite perturbs a headline the way agencies do: prefix tags, dropped
// tails, synonym-ish swaps.
func rewrite(rng *rand.Rand, h string) string {
	words := strings.Fields(h)
	switch rng.Intn(3) {
	case 0:
		return "update " + h
	case 1:
		if len(words) > 4 {
			return strings.Join(words[:len(words)-1], " ")
		}
		return h
	default:
		i := rng.Intn(len(words))
		words[i] = "breaking"
		return strings.Join(words, " ")
	}
}

func main() {
	rng := rand.New(rand.NewSource(2020))

	// Bootstrap the token ordering from a sample of the wire's vocabulary.
	sample := make([]string, 200)
	for i := range sample {
		sample[i] = baseHeadline(rng)
	}
	detector, err := ssjoin.NewTextStream(ssjoin.Config{
		Threshold:     0.8,
		WindowRecords: 5000,
	}, ssjoin.Words, sample)
	if err != nil {
		log.Fatal(err)
	}

	const n = 20000
	var recent []string
	injected, caught, flagged := 0, 0, 0
	for i := 0; i < n; i++ {
		var h string
		isDup := len(recent) > 0 && rng.Float64() < 0.25
		if isDup {
			h = rewrite(rng, recent[rng.Intn(len(recent))])
			injected++
		} else {
			h = baseHeadline(rng)
		}
		_, matches := detector.Add(h)
		if len(matches) > 0 {
			flagged++
			if isDup {
				caught++
			}
			if flagged <= 5 {
				fmt.Printf("dup @%6d: %-55q sim=%.2f -> record %d\n",
					i, h, matches[0].Similarity, matches[0].ID)
			}
		}
		if len(recent) < 256 {
			recent = append(recent, h)
		} else {
			recent[rng.Intn(len(recent))] = h
		}
	}

	st := detector.Stats()
	fmt.Printf("\nprocessed %d headlines, window holds %d\n", st.Records, st.Stored)
	fmt.Printf("injected rewrites: %d, flagged total: %d, rewrites caught: %d (%.0f%%)\n",
		injected, flagged, caught, 100*float64(caught)/float64(injected))
	fmt.Printf("filtering: %d candidates for %d verified pairs\n", st.Candidates, st.Verified)
}
