package ssjoin

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryExportedIdentifierIsDocumented walks the whole module and fails
// on any exported top-level declaration without a doc comment — the
// documentation gate for the public API and all internal packages.
func TestEveryExportedIdentifierIsDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("suspiciously few files found: %d", len(files))
	}

	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								missing = append(missing, pos(fset, s.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n%s",
			len(missing), strings.Join(missing, "\n"))
	}
}

// receiverExported reports whether d is a plain function or a method on an
// exported type; methods on unexported types never appear in godoc, so the
// lint skips them.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
